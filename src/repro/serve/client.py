"""Minimal stdlib HTTP client for a :class:`~repro.serve.server.ModelServer`.

Used by the closed-loop load generator, the CI smoke job and the quickstart
example; downstream users can talk to the server with any HTTP client — the
wire format is plain JSON.

Transient failures are retried with jittered exponential backoff: transport
errors (connection refused/reset while a pool worker restarts, status 0)
and retryable 503s (queue full, shed load, degraded pool) back off and try
again up to ``retries`` times; a 503 whose body says ``"retry": false``
(the server is shutting down for good) fails immediately.  When the retry
budget runs out the final error is loud — it says how many attempts were
made and over how long — so a dead server reads as a dead server, not as a
one-line connection error from the middle of a load test.
"""

from __future__ import annotations

import json
import random
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Optional, Sequence

import numpy as np


class ServeClientError(RuntimeError):
    """The server answered with an error status (or the transport failed).

    ``status`` is the HTTP code, or 0 for transport-level failures
    (connection reset/refused, timeout) so closed-loop clients can treat
    both uniformly as retryable errors.  ``attempts`` counts how many times
    the request was tried before giving up.
    """

    def __init__(self, status: int, body: Dict[str, Any], attempts: int = 1):
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body
        self.attempts = attempts


class ServeClient:
    """Blocking JSON client: ``predict``, ``healthz``, ``metrics``.

    ``retries`` bounds how many times a *retryable* failure is retried
    (total attempts = retries + 1); the sleep before attempt ``k`` is
    ``backoff_base_s * 2**k`` capped at ``backoff_max_s``, scaled by a
    uniform jitter in ``[1, 2)`` so a restarted server is not greeted by a
    synchronized thundering herd of waiting clients.
    """

    def __init__(self, base_url: str, timeout: float = 30.0,
                 retries: int = 2, backoff_base_s: float = 0.05,
                 backoff_max_s: float = 2.0,
                 retry_statuses: Sequence[int] = (0, 503)):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.retries = int(retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_max_s = float(backoff_max_s)
        self.retry_statuses = tuple(retry_statuses)

    # ------------------------------------------------------------------ #
    def _request_once(self, path: str,
                      payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
            except (ValueError, OSError):
                body = {"error": str(error)}
            raise ServeClientError(error.code, body) from None
        except (urllib.error.URLError, OSError) as error:
            # Connection reset/refused, timeouts: surface as a retryable
            # transport error instead of leaking raw socket exceptions.
            raise ServeClientError(0, {"error": str(error)}) from None

    def _retryable(self, error: ServeClientError) -> bool:
        if error.status not in self.retry_statuses:
            return False
        # A server that says it is closed for good ("retry": false) will not
        # get better; respect it and fail fast.
        return error.body.get("retry", True) is not False

    def _request(self, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        started = time.perf_counter()
        attempt = 0
        while True:
            try:
                return self._request_once(path, payload)
            except ServeClientError as error:
                if attempt >= self.retries or not self._retryable(error):
                    if attempt:
                        elapsed = time.perf_counter() - started
                        body = dict(error.body)
                        body["error"] = (
                            f"{body.get('error', body)} "
                            f"(gave up after {attempt + 1} attempts over "
                            f"{elapsed:.2f}s against {self.base_url})")
                        raise ServeClientError(error.status, body,
                                               attempts=attempt + 1) from None
                    raise
                delay = min(self.backoff_max_s,
                            self.backoff_base_s * (2.0 ** attempt))
                time.sleep(delay * (1.0 + random.random()))
                attempt += 1

    # ------------------------------------------------------------------ #
    def predict(self, inputs: np.ndarray, priority: int = 0) -> np.ndarray:
        """Send a batch ``(n, *sample_shape)``; returns outputs ``(n, ...)``."""
        payload: Dict[str, Any] = {
            "inputs": np.asarray(inputs, dtype=np.float32).tolist()}
        if priority:
            payload["priority"] = int(priority)
        return np.asarray(self._request("/predict", payload)["outputs"], dtype=np.float32)

    def predict_one(self, sample: np.ndarray, priority: int = 0) -> np.ndarray:
        """Send a single sample (no batch axis); returns its output vector."""
        payload: Dict[str, Any] = {
            "input": np.asarray(sample, dtype=np.float32).tolist()}
        if priority:
            payload["priority"] = int(priority)
        return np.asarray(self._request("/predict", payload)["outputs"], dtype=np.float32)

    def healthz(self) -> Dict[str, Any]:
        return self._request("/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("/metrics")

    def respawn(self) -> Dict[str, Any]:
        """Ask the server to replace dead pool workers (``POST /respawn``)."""
        return self._request("/respawn", {})


__all__ = ["ServeClient", "ServeClientError"]
