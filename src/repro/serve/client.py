"""Minimal stdlib HTTP client for a :class:`~repro.serve.server.ModelServer`.

Used by the closed-loop load generator, the CI smoke job and the quickstart
example; downstream users can talk to the server with any HTTP client — the
wire format is plain JSON.
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request
from typing import Any, Dict, Optional

import numpy as np


class ServeClientError(RuntimeError):
    """The server answered with an error status (or the transport failed).

    ``status`` is the HTTP code, or 0 for transport-level failures
    (connection reset/refused, timeout) so closed-loop clients can treat
    both uniformly as retryable errors.
    """

    def __init__(self, status: int, body: Dict[str, Any]):
        super().__init__(f"HTTP {status}: {body.get('error', body)}")
        self.status = status
        self.body = body


class ServeClient:
    """Blocking JSON client: ``predict``, ``healthz``, ``metrics``."""

    def __init__(self, base_url: str, timeout: float = 30.0):
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    def _request(self, path: str, payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        url = f"{self.base_url}{path}"
        data = json.dumps(payload).encode("utf-8") if payload is not None else None
        request = urllib.request.Request(
            url, data=data,
            headers={"Content-Type": "application/json"} if data else {},
            method="POST" if data else "GET",
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            try:
                body = json.loads(error.read().decode("utf-8"))
            except (ValueError, OSError):
                body = {"error": str(error)}
            raise ServeClientError(error.code, body) from None
        except (urllib.error.URLError, OSError) as error:
            # Connection reset/refused, timeouts: surface as a retryable
            # transport error instead of leaking raw socket exceptions.
            raise ServeClientError(0, {"error": str(error)}) from None

    # ------------------------------------------------------------------ #
    def predict(self, inputs: np.ndarray) -> np.ndarray:
        """Send a batch ``(n, *sample_shape)``; returns outputs ``(n, ...)``."""
        payload = {"inputs": np.asarray(inputs, dtype=np.float32).tolist()}
        return np.asarray(self._request("/predict", payload)["outputs"], dtype=np.float32)

    def predict_one(self, sample: np.ndarray) -> np.ndarray:
        """Send a single sample (no batch axis); returns its output vector."""
        payload = {"input": np.asarray(sample, dtype=np.float32).tolist()}
        return np.asarray(self._request("/predict", payload)["outputs"], dtype=np.float32)

    def healthz(self) -> Dict[str, Any]:
        return self._request("/healthz")

    def metrics(self) -> Dict[str, Any]:
        return self._request("/metrics")


__all__ = ["ServeClient", "ServeClientError"]
