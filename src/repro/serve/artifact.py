"""Versioned model artifacts: the unit of deployment for ``repro.serve``.

An artifact is one ``.npz`` file holding

* every weight and buffer of a trained model (``state/<path>`` arrays), and
* a JSON **manifest** (embedded as a uint8 array) describing how to rebuild
  the model without the training stack: the model-registry spec
  (``build_model`` name + kwargs), the per-layer factorization ranks of any
  Cuttlefish/Pufferfish low-rank layers, the extra-BatchNorm flag, and the
  fused Linear→activation map.

Low-rank layers are exported **factorized**: the U/Vᵀ factor pair stays
separate so the served model keeps the compressed FLOP path the paper trains
for — loading never re-composes (and never re-SVDs) the dense weight.  The
dense comparison point is produced explicitly via
:func:`repro.core.merge_factorized` before export.

Loading goes through :func:`load_artifact`, which returns a :class:`Predictor`
— a thin callable wrapper running the model graph-free (``no_grad``) on a
chosen backend.  The predictor **canonicalizes batch geometry**: every batch
is padded (by repeating its first sample) up to the next multiple of four
rows, with a floor of four.  BLAS picks its sgemm micro-kernel and k-blocking
from the matrix shape, so the same sample can produce last-ulp-different
results depending on how many other samples share its batch (single rows take
a gemv path; small odd row counts take tail kernels).  Pinning the row count
to the {4, 8, 12, …} lattice keeps every GEMM the serving-scale models emit
on one kernel path, making predictions a pure function of the sample — the
property the dynamic batcher's bit-parity guarantee is built on.  Because the
stability surface is ultimately a BLAS implementation detail,
:func:`check_batch_invariance` verifies it empirically and the result is
recorded in the manifest when an example input is supplied at export time
(DESIGN.md §9).
"""

from __future__ import annotations

import json
import os
import time
import zipfile
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

from repro import nn
from repro.core.factorize import materialize_low_rank
from repro.core.low_rank_layers import is_low_rank
from repro.nn.fuse import apply_fused_activations, fused_activation_map
from repro.tensor import Tensor, no_grad, use_backend

ARTIFACT_FORMAT_VERSION = 1

_MANIFEST_KEY = "__artifact_manifest__"
_STATE_PREFIX = "state/"
_PLAN_CONST_PREFIX = "plan/const/"


def _capture_inference_payload(model: nn.Module, input_shape: Sequence[int],
                               rows: int) -> Tuple[Dict[str, Any], list]:
    """Capture one canonical no-grad forward and lower it to a manifest payload.

    Raises :class:`repro.compile.CaptureError` when the model's forward falls
    outside the serializable fragment — callers treat that as "this artifact
    ships without a plan".
    """
    from repro.compile import CaptureError, serialize_inference_plan
    from repro.compile.graph import CaptureContext
    from repro.compile.step import _COMPILE_LOCK
    from repro.tensor import tensor as _tensor_core

    x = np.zeros((rows, *input_shape), dtype=np.float32)
    with _COMPILE_LOCK:
        if _tensor_core._capture is not None:
            raise CaptureError("another capture is already in progress")
        cap = CaptureContext([x])
        _tensor_core._capture = cap
        try:
            with no_grad():
                out = model(x)
        finally:
            _tensor_core._capture = None
    err = cap.validate()
    if err is not None:
        raise CaptureError(err)
    if not isinstance(out, Tensor):
        raise CaptureError("model output is not a tensor")
    payload, consts = serialize_inference_plan(cap, out, model, [])
    json.dumps(payload)  # the manifest must stay JSON-serialisable
    return payload, consts


class ArtifactError(RuntimeError):
    """A serving artifact is malformed, incompatible, or from another version."""


def _model_ranks(model: nn.Module) -> Dict[str, int]:
    return {path: int(module.rank) for path, module in model.named_modules()
            if path and is_low_rank(module)}


def _extra_bn_paths(model: nn.Module) -> list:
    """Paths of low-rank layers using the extra-BatchNorm variant.

    Recorded per path — a model can legitimately mix variants (e.g. staged
    ``factorize_model`` calls), and a single model-wide flag would rebuild
    the wrong structure for half its layers.
    """
    return [path for path, module in model.named_modules()
            if path and is_low_rank(module) and getattr(module, "extra_bn", False)]


def export_artifact(
    path: str,
    model: nn.Module,
    model_spec: Optional[Dict[str, Any]] = None,
    input_shape: Optional[Sequence[int]] = None,
    metadata: Optional[Dict[str, Any]] = None,
    example_batch: Optional[np.ndarray] = None,
) -> Dict[str, Any]:
    """Write ``model`` to a self-describing serving artifact at ``path``.

    Parameters
    ----------
    path:
        Destination ``.npz`` file; parent directories are created.
    model:
        A trained model — full-rank, factorized, fused, or any mix.
    model_spec:
        ``{"name": <registry name>, "kwargs": {...}}`` describing how to
        rebuild the architecture via :func:`repro.models.build_model`.  The
        kwargs must be JSON-serialisable (no rng).  When omitted, the
        artifact can only be loaded into a caller-supplied skeleton.
    input_shape:
        Per-sample input shape (without the batch axis), recorded for request
        validation by the server.
    metadata:
        Free-form JSON-serialisable dict (accuracy, switch epoch, …).
    example_batch:
        Optional ``(n, *input_shape)`` array (n ≥ 4 recommended).  When
        given, :func:`check_batch_invariance` runs at export time and the
        measured answer is stored under the manifest key ``batch_invariant``.

    Returns the manifest that was embedded in the file.
    """
    state = model.state_dict()
    extra_bn_paths = _extra_bn_paths(model)
    manifest: Dict[str, Any] = {
        "format_version": ARTIFACT_FORMAT_VERSION,
        "created_unix": time.time(),
        "model": model_spec,
        "ranks": _model_ranks(model),
        "extra_bn": bool(extra_bn_paths),
        "extra_bn_paths": extra_bn_paths,
        "fused_activations": fused_activation_map(model),
        "input_shape": list(input_shape) if input_shape is not None else None,
        "num_parameters": int(model.num_parameters()),
        "state_keys": {key: {"shape": list(value.shape), "dtype": str(value.dtype)}
                       for key, value in state.items()},
        "metadata": metadata or {},
    }
    # Validate serialisability up front — before the (comparatively costly)
    # batch-invariance check — and name the offending part of the manifest.
    for label, part in (("model_spec", model_spec), ("metadata", metadata)):
        try:
            json.dumps(part)
        except TypeError as error:
            raise ArtifactError(
                f"{label} must be JSON-serialisable to be stored in the manifest "
                f"(convert numpy scalars with float()/int()); got {part!r} ({error})"
            ) from None
    if example_batch is not None:
        was_training = model.training
        manifest["batch_invariant"] = check_batch_invariance(Predictor(model), example_batch)
        manifest["batch_invariance_checked_up_to"] = int(min(32, np.asarray(example_batch).shape[0]))
        model.train(was_training)
    plan_consts: list = []
    if input_shape is not None:
        # Best effort: a model whose forward is outside the serializable
        # fragment simply ships without a plan (the server falls back to the
        # eager no-grad path, which is bit-identical anyway).
        from repro.compile import CaptureError

        was_training = model.training
        model.eval()
        try:
            payload, plan_consts = _capture_inference_payload(
                model, tuple(input_shape), rows=4)
            manifest["inference_plan"] = payload
        except (CaptureError, TypeError):
            plan_consts = []
        finally:
            model.train(was_training)
    arrays = {_STATE_PREFIX + key: value for key, value in state.items()}
    for i, const in enumerate(plan_consts):
        arrays[_PLAN_CONST_PREFIX + str(i)] = const
    arrays[_MANIFEST_KEY] = np.frombuffer(json.dumps(manifest).encode("utf-8"), dtype=np.uint8)
    directory = os.path.dirname(os.path.abspath(path))
    os.makedirs(directory, exist_ok=True)
    np.savez(path, **arrays)
    return manifest


def read_manifest(path: str) -> Dict[str, Any]:
    """Return the manifest of an artifact without loading any weights.

    Raises :class:`ArtifactError` if the file is not an artifact or was
    written by an unsupported format version.
    """
    try:
        with np.load(path) as archive:
            if _MANIFEST_KEY not in archive.files:
                raise ArtifactError(
                    f"{path!r} has no embedded manifest — it is not a serving artifact "
                    f"(checkpoints are a different format; export one with "
                    f"repro.serve.export_artifact or `repro-cuttlefish export`)"
                )
            raw = archive[_MANIFEST_KEY].tobytes().decode("utf-8")
        manifest = json.loads(raw)
    except ArtifactError:
        raise
    except (OSError, ValueError, zipfile.BadZipFile) as error:
        # ValueError covers json.JSONDecodeError (truncated/garbled manifest).
        raise ArtifactError(f"cannot read artifact {path!r}: {error}") from error
    version = manifest.get("format_version")
    if version != ARTIFACT_FORMAT_VERSION:
        raise ArtifactError(
            f"artifact {path!r} uses format version {version!r}, but this build reads "
            f"version {ARTIFACT_FORMAT_VERSION}; re-export the model with the current code"
        )
    return manifest


def _rebuild_model(manifest: Dict[str, Any]) -> nn.Module:
    spec = manifest.get("model")
    if not spec or "name" not in spec:
        raise ArtifactError(
            "artifact has no model spec, so the architecture cannot be rebuilt; "
            "pass model=<skeleton> to load_artifact, or re-export with "
            "model_spec={'name': ..., 'kwargs': {...}}"
        )
    from repro.models import build_model  # deliberately late: only the registry, no trainer

    model = build_model(spec["name"], **spec.get("kwargs", {}))
    ranks = {key: int(value) for key, value in (manifest.get("ranks") or {}).items()}
    if ranks:
        bn_paths = set(manifest.get("extra_bn_paths")
                       or (ranks if manifest.get("extra_bn") else ()))
        plain = {path: rank for path, rank in ranks.items() if path not in bn_paths}
        with_bn = {path: rank for path, rank in ranks.items() if path in bn_paths}
        if plain:
            materialize_low_rank(model, plain, extra_bn=False)
        if with_bn:
            materialize_low_rank(model, with_bn, extra_bn=True)
    fused = manifest.get("fused_activations") or {}
    if fused:
        apply_fused_activations(model, fused)
    return model


def load_artifact(
    path: str,
    model: Optional[nn.Module] = None,
    backend: Optional[str] = None,
) -> "Predictor":
    """Load an artifact and return a ready-to-serve :class:`Predictor`.

    When ``model`` is omitted the architecture is rebuilt from the embedded
    spec (model registry + stored ranks + fusion map); a caller-supplied
    skeleton must already match the stored structure.  Weight names and
    shapes are validated against the manifest with loud errors.
    """
    manifest = read_manifest(path)
    if model is None:
        model = _rebuild_model(manifest)
    with np.load(path) as archive:
        state = {key[len(_STATE_PREFIX):]: archive[key]
                 for key in archive.files if key.startswith(_STATE_PREFIX)}
        plan_consts = [archive[_PLAN_CONST_PREFIX + str(i)]
                       for i in range(sum(1 for key in archive.files
                                          if key.startswith(_PLAN_CONST_PREFIX)))]

    expected = set(manifest.get("state_keys", state))
    if set(state) != expected:
        raise ArtifactError(
            f"artifact {path!r} is internally inconsistent: manifest lists "
            f"{sorted(expected)[:5]}… but the archive holds {sorted(state)[:5]}…"
        )
    missing, unexpected = model.load_state_dict(state, strict=False)
    if missing or unexpected:
        raise ArtifactError(
            f"artifact {path!r} does not fit the model: missing weights "
            f"{sorted(missing)}, unexpected weights {sorted(unexpected)}. "
            f"(Was the skeleton factorized/fused the same way as the export?)"
        )
    model.eval()
    return Predictor(model, manifest=manifest, backend=backend,
                     plan_consts=plan_consts)


class Predictor:
    """Graph-free inference wrapper with batch-composition-independent output.

    Calls run under ``no_grad`` on the configured backend.  With
    ``canonicalize=True`` (the default) every batch is padded up to the next
    multiple of ``pad_multiple`` rows (floor ``min_batch``) before the
    forward pass and the pad rows are discarded afterwards, so
    ``predictor(x)[i]`` is bit-identical for every way of batching the same
    samples — see the module docstring.  ``canonicalize=False`` gives the raw
    forward (used by the serving benchmark to price the determinism
    guarantee).
    """

    def __init__(self, model: nn.Module, manifest: Optional[Dict[str, Any]] = None,
                 backend: Optional[str] = None, canonicalize: bool = True,
                 pad_multiple: int = 4, min_batch: int = 4,
                 plan_consts: Optional[list] = None):
        self.model = model
        self.manifest = manifest or {}
        self.backend = backend
        self.canonicalize = canonicalize
        self.pad_multiple = int(pad_multiple)
        self.min_batch = int(min_batch)
        self.model.eval()
        # Embedded inference plan (if the artifact carries one): deserialized
        # lazily on first use, keyed by the canonical batch shape it covers.
        self._plan_consts = plan_consts or []
        self._plan: Optional[object] = None
        self._plan_shape: Optional[Tuple[int, ...]] = None
        self._plan_failed = False
        payload = self.manifest.get("inference_plan")
        if payload and payload.get("input_shapes"):
            self._plan_shape = tuple(payload["input_shapes"][0])

    @property
    def input_shape(self) -> Optional[Tuple[int, ...]]:
        shape = self.manifest.get("input_shape")
        return tuple(shape) if shape else None

    def clone(self) -> "Predictor":
        """A sibling predictor sharing the model/weights but no replay state.

        The embedded inference plan's value table is mutated during every
        replay, so a plan must never be shared across threads.  Thread-mode
        predictor pools give each worker a clone: same model object, same
        manifest and plan constants (read-only), private lazily-built plan.
        """
        return Predictor(self.model, manifest=self.manifest,
                         backend=self.backend, canonicalize=self.canonicalize,
                         pad_multiple=self.pad_multiple, min_batch=self.min_batch,
                         plan_consts=self._plan_consts)

    def _canonical_rows(self, n: int) -> int:
        multiple = self.pad_multiple
        return max(self.min_batch, ((n + multiple - 1) // multiple) * multiple)

    def __call__(self, inputs: np.ndarray) -> np.ndarray:
        """Predict a batch of shape ``(n, *input_shape)``; returns ``(n, ...)``."""
        batch = np.ascontiguousarray(inputs, dtype=np.float32)
        if self.input_shape is not None and tuple(batch.shape[1:]) != self.input_shape:
            raise ValueError(
                f"input batch has per-sample shape {tuple(batch.shape[1:])}, "
                f"artifact expects {self.input_shape}"
            )
        n = batch.shape[0]
        target = self._canonical_rows(n) if self.canonicalize else n
        if target != n:
            pad = np.broadcast_to(batch[:1], (target - n,) + batch.shape[1:])
            # ascontiguousarray matters: concatenating a broadcast view can
            # yield a non-C-contiguous result, and BLAS takes a different
            # (differently-rounding) kernel path for transposed layouts.
            batch = np.ascontiguousarray(np.concatenate([batch, pad], axis=0))
        with no_grad():
            if self.backend is not None:
                with use_backend(self.backend) as be:
                    out = self._forward(batch, be)
            else:
                from repro.tensor.backend import get_backend

                out = self._forward(batch, get_backend())
        data = out.data if isinstance(out, Tensor) else np.asarray(out)
        return data[:n].copy() if target != n else data

    def _forward(self, batch: np.ndarray, be):
        """One no-grad forward: replay the embedded plan when it fits.

        A replayed forward performs no Python graph construction (no Tensor
        wrapping, no autograd bookkeeping) — it is the serve-side p99 win the
        plan was exported for.  Batches outside the plan's canonical shape
        take the ordinary eager path, which computes bit-identical results.
        """
        plan = self._plan_for(tuple(batch.shape), be)
        if plan is not None:
            vals = plan.run_forward([batch], be)
            return vals[plan.loss_slot]
        return self.model(batch)

    def _plan_for(self, shape: Tuple[int, ...], be):
        if shape != self._plan_shape or self._plan_failed:
            return None
        if self._plan is None:
            from repro.compile import CaptureError, deserialize_inference_plan

            try:
                self._plan = deserialize_inference_plan(
                    self.manifest["inference_plan"], self._plan_consts,
                    self.model, be)
            except CaptureError:
                self._plan_failed = True
                return None
        return self._plan


def check_batch_invariance(
    predictor: Predictor,
    example_batch: np.ndarray,
    max_batch_size: int = 32,
    compositions: Optional[Sequence[int]] = None,
) -> bool:
    """Empirically verify that predictions do not depend on batch grouping.

    The reference is the one-at-a-time prediction of every sample (the
    canonical minimum-geometry forward); the batch is then re-run split into
    chunks of each size in ``compositions`` — by default 2, 3 and every
    multiple of 4 up to ``min(max_batch_size, len(example_batch))`` — and
    every per-sample output must be bit-identical.  Batch canonicalization
    makes this hold for the model shapes this repo serves up to the batch
    sizes its policies use, but it is ultimately a property of the
    underlying BLAS (whose kernel blocking can change with GEMM geometry) —
    so artifacts record the *measured* answer and the batch-size range it
    was measured over, rather than assuming it.
    """
    example_batch = np.ascontiguousarray(example_batch, dtype=np.float32)
    n = example_batch.shape[0]
    limit = min(int(max_batch_size), n)
    if compositions is None:
        compositions = sorted({2, 3} | {c for c in range(4, limit + 1, 4)})
    reference = np.concatenate(
        [predictor(example_batch[i:i + 1]) for i in range(n)], axis=0)
    for chunk in compositions:
        if chunk > n:
            continue
        pieces = [predictor(example_batch[i:i + chunk]) for i in range(0, n, chunk)]
        if not np.array_equal(np.concatenate(pieces, axis=0), reference):
            return False
    return True


def artifact_size_bytes(path: str) -> int:
    """On-disk size of an artifact — the number the compression claims cite."""
    return os.path.getsize(path)


__all__ = [
    "ARTIFACT_FORMAT_VERSION",
    "ArtifactError",
    "Predictor",
    "artifact_size_bytes",
    "check_batch_invariance",
    "export_artifact",
    "load_artifact",
    "read_manifest",
]
