"""Predictor pool: N batching workers draining one shared request queue.

This is the replication layer the PR 3 engine lacked.  The queue, the
batching policy and the metrics instruments are shared; each
:class:`PoolWorker` runs the coalescing loop (collect → execute → respond)
on its own thread against its own :mod:`~repro.serve.engine` — an inline
engine for thread mode, a forked shared-memory engine for process mode.
Pool size 1 with an inline engine reproduces the single-worker engine
byte-for-byte, and because the :class:`~repro.serve.artifact.Predictor`
canonicalizes batch geometry, predictions are bit-invariant across pool
sizes: which worker coalesced a request (and with whom) can never change
its answer, only its latency.

Worker failure is a first-class state, not an accident:

* a *recoverable* inference error (the model raised) fails that batch's
  futures and the worker keeps serving — exactly the pre-pool behaviour;
* a *fatal* error (:class:`~repro.serve.engine.WorkerDiedError` from a dead
  child process, or any non-``Exception`` escaping the predictor) fails the
  in-flight futures loudly, retires the worker, and drops the pool's
  ``pool_workers_alive`` gauge so ``/healthz`` degrades;
* when the *last* worker dies, queued requests are swept and failed —
  nothing ever hangs waiting for a worker that is not coming back;
* :meth:`PredictorPool.respawn_dead` rebuilds dead workers (reforking
  process engines) and restores full throughput without touching live ones.

Per-worker ``PipelineStats`` keep the stall-vs-compute split the trainer
uses; the pool aggregates them (including stats of retired generations) so
the engine-level ``worker`` metrics never move backwards across a respawn.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.profiling.pipeline import PipelineStats
from repro.serve.engine import WorkerDiedError
from repro.telemetry import MetricsRegistry
from repro.telemetry import tracing as _tracing
from repro.utils.concurrency import CLOSED, ClosableQueue
from repro.utils.logging import get_logger

logger = get_logger("serve.pool")


@dataclass
class WorkerContext:
    """Everything a pool worker shares with its siblings."""

    name: str
    queue: ClosableQueue
    policy: Any                       # BatchingPolicy (read every cycle)
    queue_latency: Any                # LatencyTracker
    compute_latency: Any
    request_latency: Any
    batch_sizes: Any                  # BatchSizeHistogram
    errors: Any                       # Counter
    cache: Optional[Any] = None       # ResponseCache
    slo: Optional[Any] = None         # SLOController


class PoolWorker:
    """One batching worker: a thread coalescing requests into one engine."""

    def __init__(self, index: int, engine, ctx: WorkerContext,
                 on_exit: Callable[["PoolWorker"], None]):
        self.index = index
        self.engine = engine
        self.ctx = ctx
        self.stats = PipelineStats()
        self.failed = False
        self._on_exit = on_exit
        self._thread = threading.Thread(
            target=self._run, name=f"{ctx.name}-worker{index}", daemon=True)

    def start(self) -> "PoolWorker":
        self._thread.start()
        return self

    @property
    def alive(self) -> bool:
        return self._thread.is_alive()

    def join(self, timeout: Optional[float] = None) -> None:
        self._thread.join(timeout=timeout)

    # ------------------------------------------------------------------ #
    def _run(self) -> None:
        try:
            self._loop()
        except BaseException as error:  # noqa: BLE001 — reported via futures
            self.failed = True
            logger.error("%s-worker%d died: %r", self.ctx.name, self.index, error)
        finally:
            try:
                self.engine.close()
            except Exception:  # noqa: BLE001 — best-effort teardown
                pass
            self._on_exit(self)

    def _loop(self) -> None:
        ctx = self.ctx
        carry: Optional[Any] = None
        while True:
            waited_from = time.perf_counter()
            if carry is not None:
                item, carry = carry, None
            else:
                item = ctx.queue.get()
            if item is CLOSED:
                return
            first = item
            if first.n >= ctx.policy.max_batch_size:
                batch = [first]
            else:
                batch, carry = self._collect(first)
            # Idle-plus-coalescing wait is "stall", the forward pass is
            # "compute" — the serving twin of the trainer's data-stall split.
            executing_from = time.perf_counter()
            self.stats.observe_stall(executing_from - waited_from)
            if _tracing.enabled():
                _tracing.record_span("batch_assembly", waited_from,
                                     executing_from, cat="serve",
                                     requests=len(batch))
            try:
                self._execute(batch)
            except BaseException as error:
                # The worker is dying with a batch in flight: fail every
                # unresolved future loudly before unwinding — callers must
                # never hang on a batch nobody will compute.
                self._fail_batch(batch, error)
                raise
            self.stats.observe_compute(time.perf_counter() - executing_from,
                                       samples=sum(r.n for r in batch))

    def _collect(self, first) -> Tuple[List[Any], Optional[Any]]:
        """Coalesce up to ``max_batch_size`` samples, bounded by max_wait_ms.

        Returns ``(batch, carry)`` — ``carry`` holds an item that must be
        handled next cycle (the shutdown sentinel, or a request that would
        overflow this batch); re-queueing either could block on a full
        bounded queue or reorder requests.
        """
        import queue as _stdlib_queue

        ctx = self.ctx
        batch = [first]
        carry: Optional[Any] = None
        total = first.n
        deadline = first.enqueued_at + ctx.policy.max_wait_ms / 1e3
        while total < ctx.policy.max_batch_size:
            remaining = deadline - time.perf_counter()
            try:
                item = ctx.queue.get_nowait() if remaining <= 0 else \
                    ctx.queue.get(timeout=remaining)
            except _stdlib_queue.Empty:
                break
            if item is CLOSED:
                carry = item
                break
            if total + item.n > ctx.policy.max_batch_size:
                carry = item
                break
            batch.append(item)
            total += item.n
        return batch, carry

    def _execute(self, batch: List[Any]) -> None:
        ctx = self.ctx
        started = time.perf_counter()
        for request in batch:
            ctx.queue_latency.observe(started - request.enqueued_at)
        total = sum(request.n for request in batch)
        ctx.batch_sizes.observe(total)
        try:
            stacked = batch[0].samples if len(batch) == 1 else \
                np.concatenate([request.samples for request in batch], axis=0)
            if total > ctx.policy.max_batch_size:
                # A single oversized request: chunk it so memory stays bounded.
                step = ctx.policy.max_batch_size
                outputs = np.concatenate(
                    [self.engine.predict(stacked[i:i + step])
                     for i in range(0, total, step)],
                    axis=0,
                )
            else:
                outputs = self.engine.predict(stacked)
        except WorkerDiedError:
            raise  # fatal: _loop fails the batch and retires this worker
        except Exception as error:  # noqa: BLE001 — forwarded to the callers
            ctx.errors.inc(len(batch))
            for request in batch:
                if not request.future.set_running_or_notify_cancel():
                    continue
                request.future.set_exception(error)
            return
        compute_end = time.perf_counter()
        ctx.compute_latency.observe(compute_end - started)
        offset = 0
        done = compute_end
        for request in batch:
            slice_ = outputs[offset:offset + request.n]
            offset += request.n
            latency = done - request.enqueued_at
            ctx.request_latency.observe(latency)
            if ctx.slo is not None:
                ctx.slo.observe(latency)
            if ctx.cache is not None and ctx.cache.enabled:
                ctx.cache.put(request.samples, slice_)
            if request.future.set_running_or_notify_cancel():
                request.future.set_result(slice_)
        if _tracing.enabled():
            _tracing.record_span("inference", started, compute_end,
                                 cat="serve", samples=total)
            _tracing.record_span("respond", compute_end, time.perf_counter(),
                                 cat="serve")

    def _fail_batch(self, batch: List[Any], error: BaseException) -> None:
        cause = error if isinstance(error, Exception) else None
        failure = error if isinstance(error, WorkerDiedError) else WorkerDiedError(
            f"{self.ctx.name}-worker{self.index} died mid-batch: {error!r}")
        if cause is not None and failure is not cause:
            failure.__cause__ = cause
        failed = 0
        for request in batch:
            if request.future.done():
                continue
            if request.future.set_running_or_notify_cancel():
                request.future.set_exception(failure)
                failed += 1
        if failed:
            self.ctx.errors.inc(failed)

    def snapshot(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "alive": self.alive,
            "failed": self.failed,
            "engine": getattr(self.engine, "mode", "unknown"),
            "pid": getattr(self.engine, "pid", None),
            **self.stats.as_dict(),
            "utilization": 1.0 - self.stats.stall_fraction,
        }


class PredictorPool:
    """N :class:`PoolWorker`\\ s over one queue, with liveness accounting."""

    def __init__(
        self,
        engine_factory: Callable[[int], Any],
        size: int,
        ctx: WorkerContext,
        registry: Optional[MetricsRegistry] = None,
    ):
        if size < 1:
            raise ValueError(f"pool size must be >= 1, got {size}")
        self.size = int(size)
        self.ctx = ctx
        self._engine_factory = engine_factory
        self._workers: List[PoolWorker] = []
        self._retired = PipelineStats()
        self._lock = threading.Lock()
        self.closed = False
        self.respawns_total = 0
        registry = registry or MetricsRegistry("serve")
        self._g_size = registry.gauge("pool_workers")
        self._g_alive = registry.gauge("pool_workers_alive")
        self._g_size.set(self.size)
        registry.register_collector("pool", self.snapshot)

    # ------------------------------------------------------------------ #
    def start(self) -> "PredictorPool":
        for index in range(self.size):
            worker = PoolWorker(index, self._engine_factory(index), self.ctx,
                                self._on_worker_exit)
            self._workers.append(worker)
        for worker in self._workers:
            worker.start()
        self._g_alive.set(self.alive_workers)
        return self

    @property
    def workers(self) -> List[PoolWorker]:
        return list(self._workers)

    @property
    def alive_workers(self) -> int:
        return sum(1 for worker in self._workers if worker.alive)

    @property
    def any_failed(self) -> bool:
        return any(worker.failed for worker in self._workers)

    def worker_pids(self) -> List[Optional[int]]:
        """Child PIDs per worker (``None`` for inline engines / dead workers)."""
        return [getattr(worker.engine, "pid", None) for worker in self._workers]

    # ------------------------------------------------------------------ #
    def _on_worker_exit(self, worker: PoolWorker) -> None:
        self._g_alive.set(self.alive_workers)
        if worker.failed and not self.closed and self.alive_workers == 0:
            # The last worker is gone: nothing will ever drain the queue, so
            # fail whatever is pending instead of hanging its callers.
            error = WorkerDiedError(
                f"{self.ctx.name}: all {self.size} inference workers are dead; "
                f"call respawn_workers() to recover")

            def fail(item) -> None:
                if item.future.set_running_or_notify_cancel():
                    item.future.set_exception(error)
                    self.ctx.errors.inc()

            self.ctx.queue.drain(fail)

    def respawn_dead(self) -> int:
        """Replace every dead worker with a fresh one; returns the count.

        Process engines are re-forked (their model weights are still mapped
        in the pool's shared segment); retired workers' stats fold into the
        pool accumulator so aggregate counters never move backwards.
        """
        respawned = 0
        with self._lock:
            if self.closed:
                return 0
            for index, worker in enumerate(self._workers):
                if worker.alive:
                    continue
                self._retired.merge(worker.stats)
                engine = worker.engine
                if not getattr(engine, "alive", False):
                    engine = self._engine_factory(index)
                replacement = PoolWorker(index, engine, self.ctx,
                                         self._on_worker_exit)
                self._workers[index] = replacement
                replacement.start()
                respawned += 1
                self.respawns_total += 1
        if respawned:
            logger.info("%s: respawned %d dead worker(s)", self.ctx.name, respawned)
            self._g_alive.set(self.alive_workers)
        return respawned

    # ------------------------------------------------------------------ #
    def request_stop(self) -> None:
        """Enqueue one shutdown sentinel per live worker.

        Extra sentinels (for workers that die while stopping) are harmless —
        ``drain`` discards them.
        """
        with self._lock:
            self.closed = True
        for _ in range(max(1, self.alive_workers)):
            self.ctx.queue.close()

    def join(self, timeout: Optional[float] = 30.0) -> bool:
        """Join every worker thread; ``True`` when all stopped in time."""
        deadline = None if timeout is None else time.perf_counter() + timeout
        for worker in self._workers:
            remaining = None if deadline is None else \
                max(0.0, deadline - time.perf_counter())
            worker.join(timeout=remaining)
        self._g_alive.set(self.alive_workers)
        return self.alive_workers == 0

    # ------------------------------------------------------------------ #
    def aggregate_stats(self) -> PipelineStats:
        merged = PipelineStats()
        merged.merge(self._retired)
        for worker in self._workers:
            merged.merge(worker.stats)
        return merged

    def snapshot(self) -> Dict[str, Any]:
        return {
            "size": self.size,
            "alive": self.alive_workers,
            "respawns_total": self.respawns_total,
            "workers": [worker.snapshot() for worker in self._workers],
        }


__all__ = ["PoolWorker", "PredictorPool", "WorkerContext"]
