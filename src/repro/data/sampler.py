"""Epoch-keyed index samplers for the streaming data pipeline.

A sampler maps ``epoch → index order``.  Unlike the legacy loader's stateful
generator (whose permutation depends on how many epochs were drawn before),
samplers here are pure functions of ``(root_seed, seed_offset, epoch)`` —
asking for epoch 3's order twice gives the same answer.  That replayability
is what makes mid-epoch resume, prefetching and sharding deterministic.

``ShardedSampler`` is the data-parallel foothold: each rank sees a
deterministic 1/world_size slice of the same global permutation, padded so
every rank performs the same number of steps (the padding rule every
all-reduce training loop needs).
"""

from __future__ import annotations

import numpy as np

from repro.utils import get_epoch_rng


class Sampler:
    """Base: ``indices(epoch)`` returns the epoch's index order."""

    def __len__(self) -> int:
        raise NotImplementedError

    def indices(self, epoch: int) -> np.ndarray:
        raise NotImplementedError


class SequentialSampler(Sampler):
    """Indices ``0..n-1`` in order, every epoch."""

    def __init__(self, n: int):
        self.n = int(n)

    def __len__(self) -> int:
        return self.n

    def indices(self, epoch: int) -> np.ndarray:
        return np.arange(self.n)


class ShuffledSampler(Sampler):
    """A fresh permutation per epoch, keyed on ``(root_seed, seed_offset, epoch)``."""

    def __init__(self, n: int, seed_offset: int = 7):
        self.n = int(n)
        self.seed_offset = seed_offset

    def __len__(self) -> int:
        return self.n

    def indices(self, epoch: int) -> np.ndarray:
        return get_epoch_rng(self.seed_offset, epoch).permutation(self.n)


class ShardedSampler(Sampler):
    """Rank ``rank`` of ``world_size``'s slice of the epoch's global order.

    All ranks compute the same global permutation (same seed key), pad it to
    a multiple of ``world_size`` by repeating its head — deterministic, no
    rank ever starves — and take the strided slice ``order[rank::world_size]``.
    Shards are therefore disjoint over the original indices (padding aside),
    equally sized, and reproducible on every rank independently.
    """

    def __init__(self, n: int, rank: int, world_size: int,
                 shuffle: bool = True, seed_offset: int = 7):
        if world_size < 1:
            raise ValueError(f"world_size must be >= 1, got {world_size}")
        if not 0 <= rank < world_size:
            raise ValueError(f"rank must be in [0, {world_size}), got {rank}")
        if n < 1:
            raise ValueError(f"ShardedSampler needs at least one sample, got n={n}")
        self.n = int(n)
        self.rank = rank
        self.world_size = world_size
        self.shuffle = shuffle
        self.seed_offset = seed_offset

    def __len__(self) -> int:
        return (self.n + self.world_size - 1) // self.world_size

    def indices(self, epoch: int) -> np.ndarray:
        if self.shuffle:
            order = get_epoch_rng(self.seed_offset, epoch).permutation(self.n)
        else:
            order = np.arange(self.n)
        pad = (-self.n) % self.world_size
        if pad:
            # Cyclic repetition (np.resize), not a head slice: when
            # world_size > n the pad exceeds the order itself, and a slice
            # would silently truncate — leaving some ranks with short or
            # empty shards, the lockstep violation padding exists to prevent.
            order = np.resize(order, self.n + pad)
        return order[self.rank::self.world_size]


__all__ = ["Sampler", "SequentialSampler", "ShuffledSampler", "ShardedSampler"]
