"""Image augmentation transforms (numpy, CHW layout).

These reproduce the standard CIFAR/SVHN/ImageNet pipelines the paper trains
with: channel-wise normalisation, random horizontal flip and random crop with
reflection padding.  Transforms are plain callables composed with
:class:`Compose`.

Two application paths exist:

* the legacy per-sample path — ``transform(image)`` inside a ``Dataset`` —
  draws from a stateful sequential generator, so the augmentation a sample
  receives depends on how many samples were processed before it;
* the vectorized batch path — ``transform.apply_batch(images, sample_ids,
  epoch)`` — operates on a stacked ``(N, C, H, W)`` array and draws its
  randomness from counter-based streams keyed on ``(root_seed, epoch,
  transform_stream, sample_id)`` (see :mod:`repro.utils.seed`).  The bits a
  sample receives are a pure function of its identity, so batch size,
  iteration order, prefetch depth and worker count cannot change them — the
  property the streaming pipeline's bit-parity guarantee rests on.

The batch path is bit-identical to applying itself on single-sample batches:
flips and crops are exact gathers and normalisation is elementwise, so
stacking commutes with every operation.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.utils import get_rng, sample_integers, sample_uniforms

# Channel statistics used by the paper for CIFAR/SVHN/ImageNet.
IMAGENET_MEAN = np.array([0.485, 0.456, 0.406], dtype=np.float32)
IMAGENET_STD = np.array([0.229, 0.224, 0.225], dtype=np.float32)


def supports_batch(transform: Callable) -> bool:
    """True when ``transform`` offers the vectorized counter-based path."""
    return hasattr(transform, "apply_batch")


class Compose:
    """Apply transforms in sequence (per-sample and batch paths)."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]):
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image)
        return image

    def apply_batch(self, images: np.ndarray, sample_ids: Optional[np.ndarray] = None,
                    epoch: int = 0) -> np.ndarray:
        """Vectorized application over a stacked ``(N, ...)`` batch.

        Transforms without an ``apply_batch`` method fall back to a
        per-sample loop (correct, but without the counter-based determinism
        guarantee for their randomness).
        """
        for transform in self.transforms:
            if supports_batch(transform):
                images = transform.apply_batch(images, sample_ids, epoch)
            else:
                images = np.stack([transform(image) for image in images])
        return images


class Normalize:
    """Per-channel standardisation of a CHW image (or an NCHW batch)."""

    def __init__(self, mean=IMAGENET_MEAN, std=IMAGENET_STD):
        self.mean = np.asarray(mean, dtype=np.float32).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(-1, 1, 1)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        channels = image.shape[0]
        mean = self.mean[:channels]
        std = self.std[:channels]
        return (image - mean) / std

    def apply_batch(self, images: np.ndarray, sample_ids: Optional[np.ndarray] = None,
                    epoch: int = 0) -> np.ndarray:
        channels = images.shape[1]
        mean = self.mean[None, :channels]
        std = self.std[None, :channels]
        # Elementwise, so bit-identical to the per-sample path.
        return (images - mean) / std


class RandomHorizontalFlip:
    """Flip the image left-right with probability ``p``.

    ``seed_offset`` doubles as the transform's counter-RNG stream id on the
    batch path, so two flip transforms in one pipeline draw independent bits.
    """

    def __init__(self, p: float = 0.5, seed_offset: int = 101):
        self.p = p
        self.seed_offset = seed_offset
        self._rng = get_rng(offset=seed_offset)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image

    def apply_batch(self, images: np.ndarray, sample_ids: Optional[np.ndarray] = None,
                    epoch: int = 0) -> np.ndarray:
        sample_ids = _resolve_ids(sample_ids, len(images))
        uniforms = sample_uniforms(sample_ids, epoch=epoch, stream=self.seed_offset)[:, 0]
        flip = uniforms < self.p
        if not flip.any():
            return images
        out = images.copy()
        out[flip] = out[flip][..., ::-1]
        return out


class RandomCrop:
    """Pad by ``padding`` pixels (reflect) and take a random crop of the original size."""

    def __init__(self, size: int, padding: int = 4, seed_offset: int = 103):
        self.size = size
        self.padding = padding
        self.seed_offset = seed_offset
        self._rng = get_rng(offset=seed_offset)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        pad = self.padding
        padded = np.pad(image, ((0, 0), (pad, pad), (pad, pad)), mode="reflect")
        max_offset = padded.shape[1] - self.size
        top = int(self._rng.integers(0, max_offset + 1))
        left = int(self._rng.integers(0, max_offset + 1))
        return padded[:, top:top + self.size, left:left + self.size].copy()

    def apply_batch(self, images: np.ndarray, sample_ids: Optional[np.ndarray] = None,
                    epoch: int = 0) -> np.ndarray:
        sample_ids = _resolve_ids(sample_ids, len(images))
        pad = self.padding
        padded = np.pad(images, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="reflect")
        max_offset = padded.shape[2] - self.size
        offsets = sample_integers(sample_ids, max_offset + 1, epoch=epoch,
                                  stream=self.seed_offset, draws=2)
        top, left = offsets[:, 0], offsets[:, 1]
        size = self.size
        # Strided slice-copies into a preallocated batch beat a fancy-index
        # gather by a wide margin (the gather materialises a transposed
        # intermediate); both are exact copies, so bitwise output is equal.
        out = np.empty(images.shape[:2] + (size, size), dtype=images.dtype)
        for i in range(len(images)):
            out[i] = padded[i, :, top[i]:top[i] + size, left[i]:left[i] + size]
        return out


def _resolve_ids(sample_ids: Optional[np.ndarray], n: int) -> np.ndarray:
    """Default to positional ids when the caller tracks no sample identity."""
    if sample_ids is None:
        return np.arange(n)
    sample_ids = np.asarray(sample_ids)
    if len(sample_ids) != n:
        raise ValueError(
            f"sample_ids has {len(sample_ids)} entries for a batch of {n} images")
    return sample_ids


def standard_train_transform(image_size: int, flip: bool = True, crop_padding: int = 2) -> Compose:
    """The CIFAR-style training pipeline: random crop + flip + normalise."""
    transforms: List[Callable] = [RandomCrop(image_size, padding=crop_padding)]
    if flip:
        transforms.append(RandomHorizontalFlip())
    transforms.append(Normalize())
    return Compose(transforms)


def standard_eval_transform() -> Compose:
    """Evaluation pipeline: normalisation only."""
    return Compose([Normalize()])
