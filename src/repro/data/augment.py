"""Image augmentation transforms (numpy, CHW layout).

These reproduce the standard CIFAR/SVHN/ImageNet pipelines the paper trains
with: channel-wise normalisation, random horizontal flip and random crop with
reflection padding.  Transforms are plain callables composed with
:class:`Compose` and applied per-sample inside a ``Dataset``.
"""

from __future__ import annotations

from typing import Callable, List, Sequence

import numpy as np

from repro.utils import get_rng

# Channel statistics used by the paper for CIFAR/SVHN/ImageNet.
IMAGENET_MEAN = np.array([0.485, 0.456, 0.406], dtype=np.float32)
IMAGENET_STD = np.array([0.229, 0.224, 0.225], dtype=np.float32)


class Compose:
    """Apply transforms in sequence."""

    def __init__(self, transforms: Sequence[Callable[[np.ndarray], np.ndarray]]):
        self.transforms = list(transforms)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        for transform in self.transforms:
            image = transform(image)
        return image


class Normalize:
    """Per-channel standardisation of a CHW image."""

    def __init__(self, mean=IMAGENET_MEAN, std=IMAGENET_STD):
        self.mean = np.asarray(mean, dtype=np.float32).reshape(-1, 1, 1)
        self.std = np.asarray(std, dtype=np.float32).reshape(-1, 1, 1)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        channels = image.shape[0]
        mean = self.mean[:channels]
        std = self.std[:channels]
        return (image - mean) / std


class RandomHorizontalFlip:
    """Flip the image left-right with probability ``p``."""

    def __init__(self, p: float = 0.5, seed_offset: int = 101):
        self.p = p
        self._rng = get_rng(offset=seed_offset)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        if self._rng.random() < self.p:
            return image[:, :, ::-1].copy()
        return image


class RandomCrop:
    """Pad by ``padding`` pixels (reflect) and take a random crop of the original size."""

    def __init__(self, size: int, padding: int = 4, seed_offset: int = 103):
        self.size = size
        self.padding = padding
        self._rng = get_rng(offset=seed_offset)

    def __call__(self, image: np.ndarray) -> np.ndarray:
        pad = self.padding
        padded = np.pad(image, ((0, 0), (pad, pad), (pad, pad)), mode="reflect")
        max_offset = padded.shape[1] - self.size
        top = int(self._rng.integers(0, max_offset + 1))
        left = int(self._rng.integers(0, max_offset + 1))
        return padded[:, top:top + self.size, left:left + self.size].copy()


def standard_train_transform(image_size: int, flip: bool = True, crop_padding: int = 2) -> Compose:
    """The CIFAR-style training pipeline: random crop + flip + normalise."""
    transforms: List[Callable] = [RandomCrop(image_size, padding=crop_padding)]
    if flip:
        transforms.append(RandomHorizontalFlip())
    transforms.append(Normalize())
    return Compose(transforms)


def standard_eval_transform() -> Compose:
    """Evaluation pipeline: normalisation only."""
    return Compose([Normalize()])
