"""Synthetic stand-ins for the paper's datasets.

The paper evaluates on CIFAR-10/100, SVHN, ImageNet, the GLUE benchmark and a
Wikipedia/BookCorpus MLM pre-training corpus.  None of these can be downloaded
in this offline environment, so this module synthesises tasks that exercise the
same code paths and, crucially, reproduce the *structural* properties
Cuttlefish relies on:

* class-conditional signal of controllable intrinsic rank (so layer weights
  become approximately low-rank during training and their stable ranks
  stabilise);
* a difficulty knob (more classes / lower signal-to-noise ⇒ higher converged
  ranks, mirroring the CIFAR-100 > CIFAR-10 > SVHN ordering in the paper);
* identical input/output shapes per task family so the unmodified model
  definitions run on them.

Every generator is deterministic given the library root seed plus the task
name, so repeated benchmark runs see identical data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.data.augment import standard_eval_transform, standard_train_transform
from repro.data.dataset import ArrayDataset
from repro.utils import get_rng


def _task_rng(name: str, extra: int = 0) -> np.random.Generator:
    """Derive a per-task generator from the task name (stable across runs)."""
    digest = int(hashlib.sha256(name.encode()).hexdigest()[:8], 16)
    return get_rng(offset=digest + extra)


# --------------------------------------------------------------------------- #
# Vision tasks
# --------------------------------------------------------------------------- #
@dataclass
class VisionTaskSpec:
    """Configuration of a synthetic image-classification task."""

    name: str
    num_classes: int
    image_size: int
    channels: int = 3
    n_train: int = 512
    n_val: int = 256
    intrinsic_rank: int = 4       # spatial rank of each class template
    noise_std: float = 0.6        # per-pixel noise; higher = harder task
    template_scale: float = 1.0
    flip_augment: bool = True

    def describe(self) -> str:
        return (
            f"{self.name}: {self.num_classes} classes, {self.channels}x{self.image_size}x{self.image_size}, "
            f"{self.n_train} train / {self.n_val} val, intrinsic rank {self.intrinsic_rank}, "
            f"noise {self.noise_std}"
        )


# Paper dataset → synthetic analogue.  ``paper`` presets keep the paper's
# resolution/class counts (expensive on CPU); ``small`` presets shrink them for
# tests and CI while preserving relative difficulty ordering.
VISION_TASKS: Dict[str, VisionTaskSpec] = {
    "cifar10": VisionTaskSpec("cifar10", num_classes=10, image_size=32, n_train=2048, n_val=512,
                              intrinsic_rank=4, noise_std=0.6),
    "cifar100": VisionTaskSpec("cifar100", num_classes=100, image_size=32, n_train=2048, n_val=512,
                               intrinsic_rank=8, noise_std=0.8),
    "svhn": VisionTaskSpec("svhn", num_classes=10, image_size=32, n_train=2048, n_val=512,
                           intrinsic_rank=3, noise_std=0.4),
    "imagenet": VisionTaskSpec("imagenet", num_classes=64, image_size=32, n_train=4096, n_val=1024,
                               intrinsic_rank=10, noise_std=0.9),
    # CI-sized variants.
    "cifar10_small": VisionTaskSpec("cifar10_small", num_classes=4, image_size=16, n_train=256, n_val=128,
                                    intrinsic_rank=3, noise_std=0.5),
    "cifar100_small": VisionTaskSpec("cifar100_small", num_classes=8, image_size=16, n_train=256, n_val=128,
                                     intrinsic_rank=5, noise_std=0.7),
    "svhn_small": VisionTaskSpec("svhn_small", num_classes=4, image_size=16, n_train=256, n_val=128,
                                 intrinsic_rank=2, noise_std=0.35),
    "imagenet_small": VisionTaskSpec("imagenet_small", num_classes=8, image_size=16, n_train=384, n_val=128,
                                     intrinsic_rank=6, noise_std=0.8),
}


def _make_class_templates(spec: VisionTaskSpec, rng: np.random.Generator) -> np.ndarray:
    """Build one low-rank spatial template per class.

    Each template is a sum of ``intrinsic_rank`` rank-one spatial patterns per
    channel, which gives the class signal a controllable intrinsic
    dimensionality — the property that makes trained layer weights
    approximately low rank.
    """
    size = spec.image_size
    templates = np.zeros((spec.num_classes, spec.channels, size, size), dtype=np.float32)
    for cls in range(spec.num_classes):
        for ch in range(spec.channels):
            left = rng.standard_normal((size, spec.intrinsic_rank))
            right = rng.standard_normal((spec.intrinsic_rank, size))
            pattern = left @ right / np.sqrt(spec.intrinsic_rank)
            templates[cls, ch] = pattern
    # Normalise template energy so tasks with different ranks stay comparable.
    templates *= spec.template_scale / (np.abs(templates).mean() + 1e-8)
    return templates * 0.25


def _sample_images(spec: VisionTaskSpec, templates: np.ndarray, labels: np.ndarray,
                   rng: np.random.Generator) -> np.ndarray:
    """Draw images: class template + smooth per-sample deformation + pixel noise."""
    n = len(labels)
    size = spec.image_size
    images = templates[labels].copy()
    # Per-sample low-frequency deformation (keeps samples within the class manifold).
    coeffs = rng.standard_normal((n, spec.channels, 2, size)).astype(np.float32) * 0.1
    rows = np.linspace(0, np.pi, size, dtype=np.float32)
    basis = np.stack([np.sin(rows), np.cos(rows)], axis=0)        # (2, size)
    deform = np.einsum("ncks,kh->nchs", coeffs, basis)            # (n, c, size, size)
    images += deform
    images += rng.standard_normal(images.shape).astype(np.float32) * spec.noise_std
    # Map to [0, 1]-ish range like real pixel data before normalisation.
    images = 0.5 + 0.25 * images
    return images.astype(np.float32)


def make_vision_task(
    name: str,
    augment: bool = True,
    overrides: Optional[dict] = None,
) -> Tuple[ArrayDataset, ArrayDataset, VisionTaskSpec]:
    """Create (train_dataset, val_dataset, spec) for a named synthetic vision task."""
    if name not in VISION_TASKS:
        raise KeyError(f"unknown vision task {name!r}; available: {sorted(VISION_TASKS)}")
    spec = VISION_TASKS[name]
    if overrides:
        spec = VisionTaskSpec(**{**spec.__dict__, **overrides})
    rng = _task_rng(spec.name)
    templates = _make_class_templates(spec, rng)

    train_labels = rng.integers(0, spec.num_classes, size=spec.n_train)
    val_labels = rng.integers(0, spec.num_classes, size=spec.n_val)
    train_images = _sample_images(spec, templates, train_labels, rng)
    val_images = _sample_images(spec, templates, val_labels, rng)

    train_transform = (
        standard_train_transform(spec.image_size, flip=spec.flip_augment) if augment
        else standard_eval_transform()
    )
    val_transform = standard_eval_transform()
    train_ds = ArrayDataset(train_images, train_labels.astype(np.int64), transform=train_transform)
    val_ds = ArrayDataset(val_images, val_labels.astype(np.int64), transform=val_transform)
    return train_ds, val_ds, spec


# --------------------------------------------------------------------------- #
# NLP tasks (GLUE-style fine-tuning and MLM pre-training)
# --------------------------------------------------------------------------- #
@dataclass
class TextTaskSpec:
    """Configuration of a synthetic sequence-classification task."""

    name: str
    num_classes: int              # 1 ⇒ regression (STS-B style)
    vocab_size: int = 200
    seq_len: int = 24
    n_train: int = 512
    n_val: int = 256
    class_token_groups: int = 6   # tokens per class signature
    signal_density: float = 0.3   # fraction of positions carrying class signal
    is_regression: bool = False
    metric: str = "accuracy"      # accuracy | f1 | spearman | matthews


# GLUE task inventory matching Table 4 of the paper (WNLI excluded, as in the paper).
GLUE_TASKS: Dict[str, TextTaskSpec] = {
    "mnli": TextTaskSpec("mnli", num_classes=3, n_train=768, n_val=256, metric="accuracy"),
    "qnli": TextTaskSpec("qnli", num_classes=2, metric="accuracy"),
    "qqp": TextTaskSpec("qqp", num_classes=2, metric="f1"),
    "rte": TextTaskSpec("rte", num_classes=2, n_train=256, n_val=128, signal_density=0.2, metric="accuracy"),
    "sst2": TextTaskSpec("sst2", num_classes=2, metric="accuracy"),
    "mrpc": TextTaskSpec("mrpc", num_classes=2, n_train=384, n_val=128, metric="f1"),
    "cola": TextTaskSpec("cola", num_classes=2, signal_density=0.15, metric="matthews"),
    "stsb": TextTaskSpec("stsb", num_classes=1, is_regression=True, metric="spearman"),
}


def make_text_task(name: str, overrides: Optional[dict] = None) -> Tuple[ArrayDataset, ArrayDataset, TextTaskSpec]:
    """Create a synthetic GLUE-style task: token id sequences plus label.

    Each class owns a small set of "signature" tokens; a sample is generated by
    sprinkling signature tokens into a background of random tokens with density
    ``signal_density``.  Regression tasks (STS-B) derive the target from the
    fraction of signature tokens present, giving a continuous label.
    """
    if name not in GLUE_TASKS:
        raise KeyError(f"unknown text task {name!r}; available: {sorted(GLUE_TASKS)}")
    spec = GLUE_TASKS[name]
    if overrides:
        spec = TextTaskSpec(**{**spec.__dict__, **overrides})
    rng = _task_rng("glue-" + spec.name)

    num_signatures = max(spec.num_classes, 2)
    signature_tokens = rng.choice(
        np.arange(4, spec.vocab_size), size=(num_signatures, spec.class_token_groups), replace=False
    )

    def _generate(n: int, extra: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        sample_rng = _task_rng("glue-" + spec.name, extra=extra)
        tokens = sample_rng.integers(4, spec.vocab_size, size=(n, spec.seq_len))
        lengths = sample_rng.integers(spec.seq_len // 2, spec.seq_len + 1, size=n)
        mask = np.arange(spec.seq_len)[None, :] < lengths[:, None]
        if spec.is_regression:
            strength = sample_rng.random(n)
            labels = strength.astype(np.float32)
            class_idx = np.zeros(n, dtype=int)
        else:
            class_idx = sample_rng.integers(0, spec.num_classes, size=n)
            labels = class_idx.astype(np.int64)
            strength = np.full(n, spec.signal_density)
        for i in range(n):
            n_signal = int(round(strength[i] * lengths[i]))
            if n_signal <= 0:
                continue
            positions = sample_rng.choice(lengths[i], size=min(n_signal, lengths[i]), replace=False)
            tokens[i, positions] = sample_rng.choice(signature_tokens[class_idx[i]], size=len(positions))
        tokens[~mask] = 0  # PAD id
        if spec.is_regression:
            labels = (strength * 5.0).astype(np.float32)  # STS-B style 0-5 score
        return tokens.astype(np.int64), mask.astype(np.float32), labels

    train = _generate(spec.n_train, extra=1)
    val = _generate(spec.n_val, extra=2)
    return ArrayDataset(*train), ArrayDataset(*val), spec


@dataclass
class MLMCorpusSpec:
    """Configuration of the synthetic masked-language-model pre-training corpus."""

    name: str = "wiki_books_synth"
    vocab_size: int = 256
    seq_len: int = 32
    n_train: int = 1024
    n_val: int = 256
    mask_prob: float = 0.15
    markov_order_rank: int = 8    # rank of the token transition matrix
    mask_token_id: int = 3
    pad_token_id: int = 0


def make_mlm_corpus(spec: Optional[MLMCorpusSpec] = None) -> Tuple[ArrayDataset, ArrayDataset, MLMCorpusSpec]:
    """Create a synthetic MLM corpus (inputs, labels) for BERT pre-training.

    Sequences are drawn from a low-rank Markov chain so that masked tokens are
    genuinely predictable from context; labels are -100 at unmasked positions
    (the standard "ignore" convention).
    """
    spec = spec or MLMCorpusSpec()
    rng = _task_rng("mlm-" + spec.name)
    v = spec.vocab_size
    # Low-rank transition matrix ⇒ context carries predictive signal.
    left = rng.random((v, spec.markov_order_rank))
    right = rng.random((spec.markov_order_rank, v))
    transition = left @ right
    transition /= transition.sum(axis=1, keepdims=True)

    def _generate(n: int, extra: int) -> Tuple[np.ndarray, np.ndarray]:
        sample_rng = _task_rng("mlm-" + spec.name, extra=extra)
        sequences = np.zeros((n, spec.seq_len), dtype=np.int64)
        sequences[:, 0] = sample_rng.integers(4, v, size=n)
        for t in range(1, spec.seq_len):
            prev = sequences[:, t - 1]
            probs = transition[prev]
            cumulative = probs.cumsum(axis=1)
            draws = sample_rng.random((n, 1))
            sequences[:, t] = (draws < cumulative).argmax(axis=1)
        sequences = np.clip(sequences, 4, v - 1)
        mask = sample_rng.random((n, spec.seq_len)) < spec.mask_prob
        labels = np.where(mask, sequences, -100)
        inputs = sequences.copy()
        inputs[mask] = spec.mask_token_id
        return inputs, labels

    train = _generate(spec.n_train, extra=1)
    val = _generate(spec.n_val, extra=2)
    return ArrayDataset(*train), ArrayDataset(*val), spec
