"""Dataset and DataLoader abstractions.

These mirror the minimal ``torch.utils.data`` surface the paper's training
scripts use: map-style datasets indexed by integers and a shuffling,
mini-batching loader.  Everything stays in numpy; batches are stacked arrays.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils import get_rng


class Dataset:
    """Map-style dataset: implements ``__len__`` and ``__getitem__``."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset over parallel numpy arrays (e.g. images and labels).

    ``transform`` applies to the first array's items (the inputs) and
    ``target_transform`` to the last array's items (the targets).  Both are
    validated eagerly: a non-callable raises ``TypeError`` at construction,
    and ``target_transform`` demands at least two arrays — with a single
    array the "target" would silently be the input itself.
    """

    def __init__(self, *arrays: np.ndarray, transform: Optional[Callable] = None,
                 target_transform: Optional[Callable] = None):
        if not arrays:
            raise ValueError("ArrayDataset needs at least one array")
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ValueError(f"arrays have mismatched lengths: {sorted(lengths)}")
        if transform is not None and not callable(transform):
            raise TypeError(f"transform must be callable, got {type(transform).__name__}")
        if target_transform is not None:
            if not callable(target_transform):
                raise TypeError(
                    f"target_transform must be callable, got {type(target_transform).__name__}")
            if len(arrays) < 2:
                raise ValueError(
                    "target_transform needs a distinct target array; this dataset has "
                    f"{len(arrays)} array — pass (inputs, targets) to use it")
        self.arrays = arrays
        self.transform = transform
        self.target_transform = target_transform

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index: int):
        items = tuple(a[index] for a in self.arrays)
        if self.transform is not None:
            items = (self.transform(items[0]),) + items[1:]
        if self.target_transform is not None:
            items = items[:-1] + (self.target_transform(items[-1]),)
        return items if len(items) > 1 else items[0]


class Subset(Dataset):
    """View over a subset of another dataset's indices.

    Indices are validated at construction against the base dataset's length,
    and lookups are range-checked — an out-of-range index raises a loud
    ``IndexError`` instead of deferring to numpy's silent negative-index
    wraparound.
    """

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = [int(i) for i in indices]
        n = len(dataset)
        bad = [i for i in self.indices if not -n <= i < n]
        if bad:
            raise IndexError(
                f"Subset indices {bad[:5]} out of range for dataset of length {n}")

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        n = len(self.indices)
        if not -n <= index < n:
            raise IndexError(f"Subset index {index} out of range for length {n}")
        return self.dataset[self.indices[index]]


def _default_collate(samples: List) -> Tuple[np.ndarray, ...]:
    """Stack a list of per-sample tuples into a tuple of batched arrays."""
    if isinstance(samples[0], tuple):
        num_fields = len(samples[0])
        return tuple(np.stack([s[i] for s in samples]) for i in range(num_fields))
    return (np.stack(samples),)


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Iterating yields tuples of stacked numpy arrays.  The loader draws its
    shuffling permutation from a generator derived from the library root seed
    so that epochs are reproducible.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        collate_fn: Optional[Callable] = None,
        seed_offset: int = 7,
    ):
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.collate_fn = collate_fn or _default_collate
        self._rng = get_rng(offset=seed_offset)

    def set_epoch(self, epoch: int) -> None:
        """No-op: the legacy loader's shuffle stream advances statefully.

        Present so the loader satisfies the :class:`~repro.data.pipeline.
        BatchStream` protocol consumers code against.
        """

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, ...]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            samples = [self.dataset[int(i)] for i in idx]
            yield self.collate_fn(samples)


def train_val_split(dataset: Dataset, val_fraction: float = 0.1, seed_offset: int = 11) -> Tuple[Subset, Subset]:
    """Deterministically split a dataset into train/validation subsets.

    ``val_fraction`` must lie in ``[0, 1]``.  The boundary values are
    well-defined rather than degenerate: ``0.0`` returns an empty validation
    subset (every sample trains), ``1.0`` an empty train subset — both are
    ordinary :class:`Subset` objects that report length 0 and iterate to
    nothing.
    """
    if not 0.0 <= val_fraction <= 1.0:
        raise ValueError(f"val_fraction must be within [0, 1], got {val_fraction}")
    n = len(dataset)
    rng = get_rng(offset=seed_offset)
    order = rng.permutation(n)
    n_val = min(int(round(n * val_fraction)), n)
    return Subset(dataset, order[n_val:]), Subset(dataset, order[:n_val])
