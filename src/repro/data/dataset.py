"""Dataset and DataLoader abstractions.

These mirror the minimal ``torch.utils.data`` surface the paper's training
scripts use: map-style datasets indexed by integers and a shuffling,
mini-batching loader.  Everything stays in numpy; batches are stacked arrays.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.utils import get_rng


class Dataset:
    """Map-style dataset: implements ``__len__`` and ``__getitem__``."""

    def __len__(self) -> int:
        raise NotImplementedError

    def __getitem__(self, index: int):
        raise NotImplementedError


class ArrayDataset(Dataset):
    """Dataset over parallel numpy arrays (e.g. images and labels)."""

    def __init__(self, *arrays: np.ndarray, transform: Optional[Callable] = None):
        if not arrays:
            raise ValueError("ArrayDataset needs at least one array")
        lengths = {len(a) for a in arrays}
        if len(lengths) != 1:
            raise ValueError(f"arrays have mismatched lengths: {sorted(lengths)}")
        self.arrays = arrays
        self.transform = transform

    def __len__(self) -> int:
        return len(self.arrays[0])

    def __getitem__(self, index: int):
        items = tuple(a[index] for a in self.arrays)
        if self.transform is not None:
            items = (self.transform(items[0]),) + items[1:]
        return items if len(items) > 1 else items[0]


class Subset(Dataset):
    """View over a subset of another dataset's indices."""

    def __init__(self, dataset: Dataset, indices: Sequence[int]):
        self.dataset = dataset
        self.indices = list(indices)

    def __len__(self) -> int:
        return len(self.indices)

    def __getitem__(self, index: int):
        return self.dataset[self.indices[index]]


def _default_collate(samples: List) -> Tuple[np.ndarray, ...]:
    """Stack a list of per-sample tuples into a tuple of batched arrays."""
    if isinstance(samples[0], tuple):
        num_fields = len(samples[0])
        return tuple(np.stack([s[i] for s in samples]) for i in range(num_fields))
    return (np.stack(samples),)


class DataLoader:
    """Mini-batch iterator with optional shuffling.

    Iterating yields tuples of stacked numpy arrays.  The loader draws its
    shuffling permutation from a generator derived from the library root seed
    so that epochs are reproducible.
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        collate_fn: Optional[Callable] = None,
        seed_offset: int = 7,
    ):
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.collate_fn = collate_fn or _default_collate
        self._rng = get_rng(offset=seed_offset)

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[Tuple[np.ndarray, ...]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        for start in range(0, n, self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            samples = [self.dataset[int(i)] for i in idx]
            yield self.collate_fn(samples)


def train_val_split(dataset: Dataset, val_fraction: float = 0.1, seed_offset: int = 11) -> Tuple[Subset, Subset]:
    """Deterministically split a dataset into train/validation subsets."""
    n = len(dataset)
    rng = get_rng(offset=seed_offset)
    order = rng.permutation(n)
    n_val = int(round(n * val_fraction))
    return Subset(dataset, order[n_val:]), Subset(dataset, order[:n_val])
