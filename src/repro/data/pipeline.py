"""Streaming batch pipeline: vectorized loading, prefetching, reusable arenas.

The legacy :class:`~repro.data.dataset.DataLoader` materialises batches with a
Python loop — ``__getitem__`` per sample, per-sample transforms, list-based
collate — which leaves the training step idle while the interpreter shuffles
single images around.  This module replaces that with a *streaming* pipeline:

* :class:`BatchStream` — the protocol every consumer (``Trainer``,
  ``evaluate``, ``run_experiment``, the benchmarks) codes against: a
  length-aware iterable of tuples of stacked arrays with an epoch knob.
* :class:`PipelineLoader` — a synchronous vectorized loader.  For
  ``ArrayDataset`` (and ``Subset`` views over one) it gathers whole batches
  by fancy indexing and applies *batch-level* transforms driven by
  counter-based per-sample RNG (``repro.utils.seed``), so augmentation bits
  depend only on ``(root_seed, epoch, sample_id)`` — never on batch size,
  iteration order, prefetch depth or worker count.
* :class:`PrefetchingLoader` — wraps any ``BatchStream`` with bounded-queue
  producer threads (the shared :mod:`repro.utils.concurrency` primitives)
  so batch (i+1..i+depth) materialises while the model computes step i.
  Producer exceptions surface loudly on the consumer thread; early exits
  shut producers down deterministically.  Because batch content is a pure
  function of ``(epoch, batch_index)``, prefetched output is bit-identical
  to the synchronous loader at every depth and worker count.
* :class:`CollateArena` — a small ring of reusable collate buffers.  On the
  ``numpy-fast`` backend the ring draws its buffers from the backend's
  pooled allocator, so the input pipeline and the autograd engine share one
  buffer economy.

Sharding for data-parallel training comes from
:class:`~repro.data.sampler.ShardedSampler` plugged into ``PipelineLoader``.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Iterator, List, Optional, Tuple

import numpy as np

from repro.data.augment import supports_batch
from repro.data.dataset import ArrayDataset, Dataset, Subset, _default_collate
from repro.data.sampler import Sampler, SequentialSampler, ShardedSampler, ShuffledSampler
from repro.telemetry import tracing as _tracing
from repro.utils import CLOSED, BackgroundProducer, ClosableQueue, ProducerFailure

Batch = Tuple[np.ndarray, ...]


class BatchStream:
    """Protocol for batch producers the training stack consumes.

    * ``len(stream)`` — number of batches per epoch;
    * ``iter(stream)`` — yields tuples of stacked numpy arrays;
    * ``set_epoch(epoch)`` — selects the epoch (shuffling order and
      augmentation bits are keyed on it); streams without per-epoch state
      inherit the no-op.

    The legacy ``DataLoader`` satisfies this protocol too, so every consumer
    works with either implementation.
    """

    def set_epoch(self, epoch: int) -> None:
        pass

    def __len__(self) -> int:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Batch]:
        raise NotImplementedError


class CollateArena:
    """Ring of reusable batch buffers, shared with the backend allocator.

    ``take(shape, dtype)`` hands out buffers round-robin from a per-shape
    ring of ``slots`` entries, so a buffer is only reused after ``slots - 1``
    other batches of the same shape were handed out.  Consumers that retain
    a batch longer than that (``slots`` defaults to prefetch depth + 2,
    comfortably past the one-step lifetime of a training batch) must copy.
    On backends that pool buffers (``numpy-fast``) fresh ring entries come
    from the backend arena — freed gradient buffers of matching layout get a
    second life as collate buffers.

    An optional shared-segment ``source`` (a :class:`repro.utils.shm.ShmArena`)
    backs fresh ring entries onto shared memory, making collated batches
    visible across fork boundaries without serialization (the process
    drive mode's zero-copy batch-handoff hook).  Best-effort: when the
    segment is full the ring falls back to private allocation.
    """

    def __init__(self, slots: int = 4, source=None):
        if slots < 2:
            raise ValueError(f"CollateArena needs at least 2 slots, got {slots}")
        self.slots = slots
        self.source = source
        self._rings: dict = {}
        self._lock = threading.Lock()

    def _allocate(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        from repro.tensor.backend import get_backend  # lazy: avoid data→tensor import cycle

        if self.source is not None:
            buf = self.source.alloc(shape, dtype)
            if buf is not None:
                return buf
        backend = get_backend()
        if getattr(backend, "pool_buffers", False):
            return backend.take(shape, dtype)
        return np.empty(shape, dtype=dtype)

    def take(self, shape: Tuple[int, ...], dtype) -> np.ndarray:
        key = (tuple(shape), np.dtype(dtype).str)
        with self._lock:
            ring: List[np.ndarray] = self._rings.setdefault(key, [])
            if len(ring) < self.slots:
                buf = self._allocate(key[0], dtype)
            else:
                buf = ring.pop(0)
            ring.append(buf)
            return buf


def _resolve_array_base(dataset: Dataset):
    """Unwrap nested ``Subset`` views down to an ``ArrayDataset``.

    Returns ``(base, base_indices)`` where ``base_indices`` maps loader-level
    indices to *base* sample ids (``None`` for the identity), or
    ``(None, None)`` when the chain does not bottom out in an ArrayDataset —
    the loader then falls back to per-sample ``__getitem__``.

    The base ids matter: augmentation streams are keyed on them, so a sample
    keeps its per-epoch bits whether it is reached directly, through a
    train/val split or through a rank shard.
    """
    indices: Optional[np.ndarray] = None
    while isinstance(dataset, Subset):
        level = np.asarray(dataset.indices, dtype=np.int64)
        level = np.where(level < 0, level + len(dataset.dataset), level)
        indices = level if indices is None else level[indices]
        dataset = dataset.dataset
    if isinstance(dataset, ArrayDataset):
        return dataset, indices
    return None, None


class PipelineLoader(BatchStream):
    """Synchronous vectorized loader with counter-based augmentation RNG.

    Batches are addressable: ``load_batch(b)`` materialises epoch batch ``b``
    from scratch, which is what makes prefetch workers, mid-epoch resume and
    bit-parity testing possible.  Shuffling is epoch-keyed (same epoch ⇒
    same order) through a :class:`~repro.data.sampler.Sampler`; pass a
    ``ShardedSampler`` for data-parallel shards.

    For datasets that are not ``ArrayDataset`` views the loader degrades to
    the legacy per-sample path (still streaming, but transforms keep their
    sequential RNG semantics and no vectorization applies).
    """

    def __init__(
        self,
        dataset: Dataset,
        batch_size: int,
        shuffle: bool = False,
        drop_last: bool = False,
        sampler: Optional[Sampler] = None,
        seed_offset: int = 7,
        collate_fn: Optional[Callable] = None,
        reuse_buffers: bool = False,
        arena_slots: int = 4,
    ):
        self.dataset = dataset
        self.batch_size = int(batch_size)
        self.drop_last = drop_last
        self.collate_fn = collate_fn or _default_collate
        if sampler is None:
            n = len(dataset)
            sampler = ShuffledSampler(n, seed_offset=seed_offset) if shuffle \
                else SequentialSampler(n)
        self.sampler = sampler
        self.epoch = 0
        self.arena = CollateArena(slots=arena_slots) if reuse_buffers else None
        self._base, self._base_indices = _resolve_array_base(dataset)
        self._order_cache: Tuple[int, Optional[np.ndarray]] = (-1, None)
        self._order_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    @property
    def vectorized(self) -> bool:
        """True when the fast fancy-index + batch-transform path is active."""
        return self._base is not None

    def set_epoch(self, epoch: int) -> None:
        self.epoch = int(epoch)

    def __len__(self) -> int:
        n = len(self.sampler)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def _order_for(self, epoch: int) -> np.ndarray:
        with self._order_lock:
            cached_epoch, cached = self._order_cache
            if cached_epoch != epoch:
                cached = np.asarray(self.sampler.indices(epoch))
                self._order_cache = (epoch, cached)
            return cached

    def load_batch(self, batch_index: int, epoch: Optional[int] = None) -> Batch:
        """Materialise batch ``batch_index`` of ``epoch`` (default: current)."""
        epoch = self.epoch if epoch is None else int(epoch)
        if not 0 <= batch_index < len(self):
            raise IndexError(f"batch index {batch_index} out of range for {len(self)} batches")
        traced = _tracing.enabled()
        if traced:
            load_start = time.perf_counter()
        order = self._order_for(epoch)
        start = batch_index * self.batch_size
        idx = order[start:start + self.batch_size]
        if self._base is not None:
            batch = self._load_vectorized(idx, epoch)
        else:
            samples = [self.dataset[int(i)] for i in idx]
            batch = self.collate_fn(samples)
        if traced:
            # Lands on the calling thread's lane — prefetch workers show
            # their loads overlapping the consumer's steps in the timeline.
            _tracing.record_span("load_batch", load_start, time.perf_counter(),
                                 cat="data", batch=batch_index)
        return batch

    def _gather(self, array: np.ndarray, ids: np.ndarray) -> np.ndarray:
        if self.arena is not None and array.ndim >= 1:
            buf = self.arena.take((len(ids),) + array.shape[1:], array.dtype)
            np.take(array, ids, axis=0, out=buf)
            return buf
        return array[ids]

    def _load_vectorized(self, idx: np.ndarray, epoch: int) -> Batch:
        base = self._base
        ids = idx if self._base_indices is None else self._base_indices[idx]
        fields = [self._gather(array, ids) for array in base.arrays]
        transform = base.transform
        if transform is not None:
            if supports_batch(transform):
                fields[0] = transform.apply_batch(fields[0], ids, epoch)
            else:
                fields[0] = np.stack([transform(x) for x in fields[0]])
        target_transform = getattr(base, "target_transform", None)
        if target_transform is not None and len(fields) > 1:
            if supports_batch(target_transform):
                fields[-1] = target_transform.apply_batch(fields[-1], ids, epoch)
            else:
                fields[-1] = np.stack([target_transform(y) for y in fields[-1]])
        return tuple(fields)

    def __iter__(self) -> Iterator[Batch]:
        for batch_index in range(len(self)):
            yield self.load_batch(batch_index)


class PrefetchingLoader(BatchStream):
    """Double-buffered background prefetch over any :class:`BatchStream`.

    ``depth`` bounds how many materialised batches may sit in flight (the
    bounded queue is the backpressure).  With ``workers > 1`` the inner
    loader must support random access (``load_batch``); batch ``b`` is
    produced by worker ``b % workers`` and the consumer round-robins the
    per-worker queues, so delivery order — and with counter-based RNG,
    content — is identical to the synchronous loader no matter how the
    workers interleave.

    Failure semantics: an exception on a producer thread is forwarded and
    re-raised on the consumer thread (with the producer traceback attached);
    abandoning the iterator mid-epoch (break, error, GC) stops and joins the
    producers deterministically.
    """

    def __init__(self, loader: BatchStream, depth: int = 2, workers: int = 1):
        if depth < 1:
            raise ValueError(f"prefetch depth must be >= 1, got {depth} "
                             f"(use the inner loader directly for synchronous loading)")
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if workers > 1 and not hasattr(loader, "load_batch"):
            raise TypeError(
                f"multi-worker prefetch needs a randomly addressable loader "
                f"(load_batch); {type(loader).__name__} only supports iteration")
        self.loader = loader
        self.depth = depth
        self.workers = workers

    def set_epoch(self, epoch: int) -> None:
        set_epoch = getattr(self.loader, "set_epoch", None)
        if set_epoch is not None:
            set_epoch(epoch)

    def __len__(self) -> int:
        return len(self.loader)

    @property
    def vectorized(self) -> bool:
        return getattr(self.loader, "vectorized", False)

    def _sources(self, num_batches: int, epoch: Optional[int]):
        """One iterable factory per worker (round-robin batch assignment)."""
        if self.workers == 1:
            return [lambda: iter(self.loader)]

        def make(worker: int):
            def source():
                for batch_index in range(worker, num_batches, self.workers):
                    yield self.loader.load_batch(batch_index, epoch)
            return source

        return [make(worker) for worker in range(self.workers)]

    def __iter__(self) -> Iterator[Batch]:
        num_batches = len(self.loader)
        epoch = getattr(self.loader, "epoch", None)
        per_queue_depth = max(1, -(-self.depth // self.workers))
        stop = threading.Event()
        queues = [ClosableQueue(per_queue_depth) for _ in range(self.workers)]
        producers = [
            BackgroundProducer(source, queue, name=f"prefetch-w{worker}", stop=stop)
            for worker, (source, queue) in enumerate(zip(self._sources(num_batches, epoch), queues))
        ]
        for producer in producers:
            producer.start()
        try:
            for batch_index in range(num_batches):
                item = queues[batch_index % self.workers].get()
                if isinstance(item, ProducerFailure):
                    item.reraise()
                if item is CLOSED:
                    raise RuntimeError(
                        f"prefetch producer ended after {batch_index} of "
                        f"{num_batches} batches")
                yield item
        finally:
            for producer in producers:
                producer.stop()


def shard_loader(loader: BatchStream, rank: int, world_size: int) -> BatchStream:
    """Derive rank ``rank``'s shard view of a pipeline loader.

    Returns a new :class:`PipelineLoader` over the same dataset, batch size
    and RNG keys whose sampler is the :class:`~repro.data.sampler.ShardedSampler`
    slice for ``(rank, world_size)`` — every rank sees ``1/world_size`` of the
    same epoch-keyed global permutation, padded to equal length.  A
    :class:`PrefetchingLoader` wrapper is re-applied around the sharded inner
    loader with the same depth/worker settings.
    """
    if isinstance(loader, PrefetchingLoader):
        inner = shard_loader(loader.loader, rank, world_size)
        return PrefetchingLoader(inner, depth=loader.depth, workers=loader.workers)
    if not isinstance(loader, PipelineLoader):
        raise TypeError(
            f"shard_loader needs a PipelineLoader (or a PrefetchingLoader "
            f"around one), got {type(loader).__name__} — data-parallel "
            f"training requires the streaming pipeline")
    sampler = loader.sampler
    shuffle = isinstance(sampler, ShuffledSampler) or bool(getattr(sampler, "shuffle", False))
    seed_offset = getattr(sampler, "seed_offset", 7)
    sharded = ShardedSampler(len(loader.dataset), rank=rank, world_size=world_size,
                             shuffle=shuffle, seed_offset=seed_offset)
    return PipelineLoader(
        loader.dataset, loader.batch_size,
        drop_last=loader.drop_last,
        sampler=sharded,
        collate_fn=loader.collate_fn,
        reuse_buffers=loader.arena is not None,
        arena_slots=loader.arena.slots if loader.arena is not None else 4,
    )


def build_replica_loaders(
    train_dataset: Dataset,
    batch_size: int,
    world_size: int,
    prefetch_depth: int = 0,
    workers: int = 1,
    reuse_buffers: bool = False,
    seed_offset: int = 7,
):
    """One sharded train loader per rank for data-parallel training.

    Rank ``r`` gets a :class:`PipelineLoader` over ``train_dataset`` whose
    sampler is ``ShardedSampler(n, rank=r, world_size)`` — all ranks share the
    epoch's global permutation and split it into disjoint, equal-length
    shards (padded by cyclic repetition), which is what keeps the replica
    workers in lockstep for the all-reduce.  With ``prefetch_depth > 0`` each
    rank's loader is additionally prefetched on its own producer threads.
    """
    if world_size < 1:
        raise ValueError(f"world_size must be >= 1, got {world_size}")
    n = len(train_dataset)
    workers = max(1, workers)
    queued = workers * max(1, -(-prefetch_depth // workers)) if prefetch_depth > 0 else 0
    loaders = []
    for rank in range(world_size):
        sampler = ShardedSampler(n, rank=rank, world_size=world_size,
                                 shuffle=True, seed_offset=seed_offset)
        loader: BatchStream = PipelineLoader(
            train_dataset, batch_size, sampler=sampler,
            seed_offset=seed_offset, reuse_buffers=reuse_buffers,
            arena_slots=max(4, queued + workers + 2),
        )
        if prefetch_depth > 0:
            loader = PrefetchingLoader(loader, depth=prefetch_depth, workers=workers)
        loaders.append(loader)
    return loaders


def build_loaders(
    train_dataset: Dataset,
    val_dataset: Optional[Dataset],
    batch_size: int,
    prefetch_depth: int = 0,
    workers: int = 1,
    reuse_buffers: bool = False,
    rank: int = 0,
    world_size: int = 1,
    seed_offset: int = 7,
):
    """Wire up the standard (train, val) pipeline pair.

    The train loader shuffles (sharded when ``world_size > 1``) and is
    wrapped in a :class:`PrefetchingLoader` when ``prefetch_depth > 0``; the
    validation loader stays synchronous and sequential (evaluation transforms
    carry no randomness, and keeping it simple makes eval order stable).
    """
    sampler = None
    if world_size > 1:
        sampler = ShardedSampler(len(train_dataset), rank=rank, world_size=world_size,
                                 shuffle=True, seed_offset=seed_offset)
    # Ring sizing must cover every buffer that can be live at once: batches
    # queued across the per-worker queues (workers * ceil(depth/workers)),
    # one batch in each blocked producer's hands, the batch the consumer is
    # training on, plus one of slack for the autograd graph's reference.
    workers = max(1, workers)
    queued = workers * max(1, -(-prefetch_depth // workers)) if prefetch_depth > 0 else 0
    train_loader: BatchStream = PipelineLoader(
        train_dataset, batch_size, shuffle=True, sampler=sampler,
        seed_offset=seed_offset, reuse_buffers=reuse_buffers,
        arena_slots=max(4, queued + workers + 2),
    )
    if prefetch_depth > 0:
        train_loader = PrefetchingLoader(train_loader, depth=prefetch_depth, workers=workers)
    val_loader = None
    if val_dataset is not None:
        val_loader = PipelineLoader(val_dataset, batch_size, shuffle=False)
    return train_loader, val_loader


__all__ = [
    "Batch",
    "BatchStream",
    "CollateArena",
    "PipelineLoader",
    "PrefetchingLoader",
    "build_loaders",
    "build_replica_loaders",
    "shard_loader",
]
