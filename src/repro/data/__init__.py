"""Data pipeline: datasets, loaders, augmentation and synthetic task generators."""

from repro.data.dataset import ArrayDataset, DataLoader, Dataset, Subset, train_val_split
from repro.data.augment import (
    Compose,
    Normalize,
    RandomCrop,
    RandomHorizontalFlip,
    standard_eval_transform,
    standard_train_transform,
    supports_batch,
)
from repro.data.pipeline import (
    BatchStream,
    CollateArena,
    PipelineLoader,
    PrefetchingLoader,
    build_loaders,
    build_replica_loaders,
    shard_loader,
)
from repro.data.sampler import (
    Sampler,
    SequentialSampler,
    ShardedSampler,
    ShuffledSampler,
)
from repro.data.synthetic import (
    GLUE_TASKS,
    MLMCorpusSpec,
    TextTaskSpec,
    VISION_TASKS,
    VisionTaskSpec,
    make_mlm_corpus,
    make_text_task,
    make_vision_task,
)

__all__ = [
    "ArrayDataset",
    "DataLoader",
    "Dataset",
    "Subset",
    "train_val_split",
    "Compose",
    "Normalize",
    "RandomCrop",
    "RandomHorizontalFlip",
    "standard_eval_transform",
    "standard_train_transform",
    "supports_batch",
    "BatchStream",
    "CollateArena",
    "PipelineLoader",
    "PrefetchingLoader",
    "build_loaders",
    "build_replica_loaders",
    "shard_loader",
    "Sampler",
    "SequentialSampler",
    "ShardedSampler",
    "ShuffledSampler",
    "GLUE_TASKS",
    "MLMCorpusSpec",
    "TextTaskSpec",
    "VISION_TASKS",
    "VisionTaskSpec",
    "make_mlm_corpus",
    "make_text_task",
    "make_vision_task",
]
