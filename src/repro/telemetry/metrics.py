"""Unified metrics registry: named instruments behind one snapshot contract.

Before this module the repo accumulated four ad-hoc metric mechanisms —
``LatencyTracker``/``BatchSizeHistogram`` (serving), ``PipelineStats``
(loaders), ``op_counters`` (backends), and the batcher's hand-rolled stats
dict.  Each had its own shape and no common export.  The registry absorbs
them behind one API:

* **Instruments** are created by name through a :class:`MetricsRegistry`
  (get-or-create, thread-safe): :class:`Counter`, :class:`Gauge`,
  :class:`LatencyTracker`, :class:`BatchSizeHistogram`.  The tracker classes
  *live here now*; ``repro.profiling.latency`` re-exports them so every
  existing import site and the bit/format-compatibility tests keep working.
* **Collectors** adapt metric sources that keep their own state
  (``PipelineStats``, ``op_counters``, the batcher) — register a zero-arg
  callable and its dict lands in the snapshot under ``collected``.
* **Snapshots** are versioned (``schema_version``) so downstream consumers
  (``/metrics``, the CI smoke leg, future dashboards) can validate shape with
  :func:`validate_snapshot` before trusting content.
* **Prometheus text exposition** (:meth:`MetricsRegistry.render_prometheus`)
  gives scrapers the flat-sample view without a second bookkeeping path.
"""

from __future__ import annotations

import math
import threading
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)

#: Version stamped into every :meth:`MetricsRegistry.snapshot`.  Bump when
#: top-level keys or per-instrument shapes change.
SNAPSHOT_SCHEMA_VERSION = 1


# --------------------------------------------------------------------------- #
# Instruments
# --------------------------------------------------------------------------- #
class Counter:
    """Monotonically increasing count (requests served, errors, steps)."""

    __slots__ = ("_value", "_lock")

    def __init__(self):
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter increments must be >= 0, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (queue depth, live workers)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, initial: float = 0.0):
        self._value = float(initial)
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class LatencyTracker:
    """Streaming latency statistics: count, mean, and windowed percentiles.

    Designed for a hot path shared by many threads: ``observe`` takes a lock
    only long enough to write one slot of a fixed-size ring buffer, and
    percentile computation sorts a snapshot outside the lock.

    Percentiles are computed over the most recent ``window`` observations
    (the ring buffer), while ``count``/``total`` accumulate over the
    tracker's whole lifetime — the usual behaviour of serving metric
    endpoints, where p99 should reflect *current* behaviour but request
    counters must never reset.

    Quantiles are total functions: an empty tracker reports ``0.0`` for
    every percentile, a single-sample tracker reports that sample for every
    percentile, and non-finite observations are rejected at ``observe``
    time so NaN can never poison the window.
    """

    def __init__(self, window: int = 8192):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = int(window)
        self._buffer = np.zeros(self.window, dtype=np.float64)
        self._next = 0
        self._filled = 0
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one duration (in seconds)."""
        value = float(seconds)
        if not math.isfinite(value):
            raise ValueError(f"observed duration must be finite, got {value}")
        with self._lock:
            self._buffer[self._next] = value
            self._next = (self._next + 1) % self.window
            self._filled = min(self._filled + 1, self.window)
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def _snapshot(self) -> np.ndarray:
        with self._lock:
            return self._buffer[: self._filled].copy()

    @staticmethod
    def _check_quantile(q: float) -> float:
        q = float(q)
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {q}")
        return q

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) over the current window, in seconds.

        Well-defined for any window size: ``0.0`` when empty, the single
        sample when only one value has been observed.
        """
        q = self._check_quantile(q)
        values = self._snapshot()
        if values.size == 0:
            return 0.0
        if values.size == 1:
            return float(values[0])
        return float(np.percentile(values, q))

    def percentiles(self, qs: Sequence[float] = DEFAULT_PERCENTILES) -> Dict[str, float]:
        qs = [self._check_quantile(q) for q in qs]
        values = self._snapshot()
        if values.size == 0:
            return {f"p{q:g}": 0.0 for q in qs}
        if values.size == 1:
            single = float(values[0])
            return {f"p{q:g}": single for q in qs}
        return {f"p{q:g}": float(np.percentile(values, q)) for q in qs}

    def summary(self, unit: str = "s") -> Dict[str, float]:
        """Aggregate view: lifetime count/mean/max plus windowed percentiles.

        ``unit`` is ``"s"`` or ``"ms"``; durations are scaled accordingly so
        the ``/metrics`` endpoint can report milliseconds directly.
        """
        scale = {"s": 1.0, "ms": 1e3}[unit]
        with self._lock:
            count, total, peak = self._count, self._total, self._max
            values = self._buffer[: self._filled].copy()
        out = {
            "count": float(count),
            "mean": scale * (total / count if count else 0.0),
            "max": scale * peak,
        }
        if values.size == 0:
            for q in DEFAULT_PERCENTILES:
                out[f"p{q:g}"] = 0.0
        elif values.size == 1:
            for q in DEFAULT_PERCENTILES:
                out[f"p{q:g}"] = scale * float(values[0])
        else:
            for q in DEFAULT_PERCENTILES:
                out[f"p{q:g}"] = scale * float(np.percentile(values, q))
        return out

    def reset(self) -> None:
        with self._lock:
            self._next = self._filled = self._count = 0
            self._total = self._max = 0.0


class BatchSizeHistogram:
    """Power-of-two histogram of executed micro-batch sizes."""

    def __init__(self, max_batch_size: int = 1024):
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        bounds: List[int] = []
        edge = 1
        while edge < max_batch_size:
            bounds.append(edge)
            edge *= 2
        bounds.append(max_batch_size)
        self.bounds = bounds                       # upper edges, inclusive
        self._counts = [0] * (len(bounds) + 1)     # final slot: > max_batch_size
        self._samples_total = 0
        self._batches_total = 0
        self._lock = threading.Lock()

    def observe(self, batch_size: int) -> None:
        size = int(batch_size)
        if size <= 0:
            raise ValueError(f"batch_size must be positive, got {size}")
        slot = len(self.bounds)
        for i, edge in enumerate(self.bounds):
            if size <= edge:
                slot = i
                break
        with self._lock:
            self._counts[slot] += 1
            self._batches_total += 1
            self._samples_total += size

    @property
    def batches(self) -> int:
        with self._lock:
            return self._batches_total

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples_total

    def mean_batch_size(self) -> float:
        with self._lock:
            return self._samples_total / self._batches_total if self._batches_total else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Bucket label → count, e.g. ``{"<=1": 4, "<=2": 0, ..., ">32": 0}``."""
        with self._lock:
            counts = list(self._counts)
        out = {f"<={edge}": counts[i] for i, edge in enumerate(self.bounds)}
        out[f">{self.bounds[-1]}"] = counts[-1]
        return out


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
class MetricsRegistry:
    """Named instruments plus pluggable collectors under one snapshot.

    ``counter``/``gauge``/``latency``/``histogram`` are get-or-create: the
    first call for a name builds the instrument, later calls return the same
    object (asking for a different kind under an existing name is an error —
    silent type confusion is how metric endpoints rot).
    """

    def __init__(self, namespace: str = "repro"):
        self.namespace = namespace
        self._instruments: Dict[str, Any] = {}
        self._collectors: Dict[str, Callable[[], Dict[str, Any]]] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def _get_or_create(self, name: str, kind: type, factory: Callable[[], Any]):
        with self._lock:
            existing = self._instruments.get(name)
            if existing is not None:
                if not isinstance(existing, kind):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}, requested {kind.__name__}")
                return existing
            instrument = factory()
            self._instruments[name] = instrument
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def latency(self, name: str, window: int = 8192) -> LatencyTracker:
        return self._get_or_create(name, LatencyTracker,
                                   lambda: LatencyTracker(window=window))

    def histogram(self, name: str, max_batch_size: int = 1024) -> BatchSizeHistogram:
        return self._get_or_create(
            name, BatchSizeHistogram,
            lambda: BatchSizeHistogram(max_batch_size=max_batch_size))

    def register_collector(self, name: str,
                           fn: Callable[[], Dict[str, Any]]) -> None:
        """Adopt an external metric source: ``fn()`` is called per snapshot.

        This is how ``PipelineStats``, ``op_counters`` and the batcher's
        worker stats join the unified snapshot without being rewritten.
        """
        with self._lock:
            self._collectors[name] = fn

    def instrument_names(self) -> List[str]:
        with self._lock:
            return sorted(self._instruments)

    # ------------------------------------------------------------------ #
    def snapshot(self) -> Dict[str, Any]:
        """The versioned unified snapshot of every instrument and collector."""
        with self._lock:
            instruments = dict(self._instruments)
            collectors = dict(self._collectors)
        snap: Dict[str, Any] = {
            "schema_version": SNAPSHOT_SCHEMA_VERSION,
            "namespace": self.namespace,
            "counters": {},
            "gauges": {},
            "latency_ms": {},
            "histograms": {},
            "collected": {},
        }
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Counter):
                snap["counters"][name] = instrument.value
            elif isinstance(instrument, Gauge):
                snap["gauges"][name] = instrument.value
            elif isinstance(instrument, LatencyTracker):
                snap["latency_ms"][name] = instrument.summary(unit="ms")
            elif isinstance(instrument, BatchSizeHistogram):
                snap["histograms"][name] = {
                    "batches": instrument.batches,
                    "samples": instrument.samples,
                    "mean": instrument.mean_batch_size(),
                    "buckets": instrument.as_dict(),
                }
        for name in sorted(collectors):
            try:
                snap["collected"][name] = collectors[name]()
            except Exception as error:  # a broken collector must not take
                snap["collected"][name] = {"error": str(error)}  # /metrics down
        return snap

    # ------------------------------------------------------------------ #
    def render_prometheus(self) -> str:
        """Flat Prometheus text exposition of the instrument snapshot.

        Collectors are exposed only for numeric leaves (flattened with ``_``
        separators) — nested non-numeric values have no Prometheus mapping.
        """
        snap = self.snapshot()
        prefix = _sanitize(self.namespace)
        lines: List[str] = []
        for name, value in snap["counters"].items():
            metric = f"{prefix}_{_sanitize(name)}"
            if not metric.endswith("_total"):  # Prometheus counter convention
                metric += "_total"
            lines.append(f"# TYPE {metric} counter")
            lines.append(f"{metric} {value}")
        for name, value in snap["gauges"].items():
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} gauge")
            lines.append(f"{metric} {_fmt(value)}")
        for name, summary in snap["latency_ms"].items():
            metric = f"{prefix}_{_sanitize(name)}_ms"
            lines.append(f"# TYPE {metric} summary")
            for key, value in summary.items():
                if key.startswith("p"):
                    lines.append(f'{metric}{{quantile="{key[1:]}"}} {_fmt(value)}')
            lines.append(f"{metric}_count {int(summary['count'])}")
            lines.append(f"{metric}_mean {_fmt(summary['mean'])}")
            lines.append(f"{metric}_max {_fmt(summary['max'])}")
        for name, hist in snap["histograms"].items():
            metric = f"{prefix}_{_sanitize(name)}"
            lines.append(f"# TYPE {metric} histogram")
            cumulative = 0
            for label, count in hist["buckets"].items():
                cumulative += count
                bound = label[2:] if label.startswith("<=") else "+Inf"
                lines.append(f'{metric}_bucket{{le="{bound}"}} {cumulative}')
            lines.append(f"{metric}_sum {hist['samples']}")
            lines.append(f"{metric}_count {hist['batches']}")
        for name, payload in snap["collected"].items():
            for key, value in _numeric_leaves(payload, _sanitize(name)):
                lines.append(f"{prefix}_{key} {_fmt(value)}")
        return "\n".join(lines) + "\n"


def _sanitize(name: str) -> str:
    return "".join(ch if (ch.isalnum() or ch == "_") else "_" for ch in name)


def _fmt(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return repr(float(value))


def _numeric_leaves(payload: Any, prefix: str):
    if isinstance(payload, dict):
        for key, value in payload.items():
            yield from _numeric_leaves(value, f"{prefix}_{_sanitize(str(key))}")
    elif isinstance(payload, (int, float)) and not isinstance(payload, bool):
        if math.isfinite(payload):
            yield prefix, payload


# --------------------------------------------------------------------------- #
# Snapshot validation (the CI assert and the tests share this)
# --------------------------------------------------------------------------- #
_LATENCY_KEYS = ("count", "mean", "max") + tuple(
    f"p{q:g}" for q in DEFAULT_PERCENTILES)


def validate_snapshot(snapshot: Dict[str, Any]) -> None:
    """Raise ``ValueError`` unless ``snapshot`` matches the version-1 contract."""
    if not isinstance(snapshot, dict):
        raise ValueError(f"snapshot must be a dict, got {type(snapshot).__name__}")
    version = snapshot.get("schema_version")
    if version != SNAPSHOT_SCHEMA_VERSION:
        raise ValueError(f"unsupported snapshot schema_version {version!r} "
                         f"(expected {SNAPSHOT_SCHEMA_VERSION})")
    for key in ("namespace", "counters", "gauges", "latency_ms",
                "histograms", "collected"):
        if key not in snapshot:
            raise ValueError(f"snapshot missing required key {key!r}")
    for section in ("counters", "gauges", "latency_ms", "histograms", "collected"):
        if not isinstance(snapshot[section], dict):
            raise ValueError(f"snapshot[{section!r}] must be a dict")
    for name, value in snapshot["counters"].items():
        if not isinstance(value, int) or value < 0:
            raise ValueError(f"counter {name!r} must be a non-negative int, "
                             f"got {value!r}")
    for name, value in snapshot["gauges"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ValueError(f"gauge {name!r} must be numeric, got {value!r}")
    for name, summary in snapshot["latency_ms"].items():
        missing = [key for key in _LATENCY_KEYS if key not in summary]
        if missing:
            raise ValueError(f"latency {name!r} missing keys {missing}")
        for key in _LATENCY_KEYS:
            if not math.isfinite(float(summary[key])):
                raise ValueError(f"latency {name!r}[{key!r}] is not finite")
    for name, hist in snapshot["histograms"].items():
        for key in ("batches", "samples", "mean", "buckets"):
            if key not in hist:
                raise ValueError(f"histogram {name!r} missing key {key!r}")
        if sum(hist["buckets"].values()) != hist["batches"]:
            raise ValueError(f"histogram {name!r} bucket counts do not sum "
                             f"to batches")


__all__ = [
    "BatchSizeHistogram",
    "Counter",
    "DEFAULT_PERCENTILES",
    "Gauge",
    "LatencyTracker",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA_VERSION",
    "validate_snapshot",
]
