"""Unified observability: span tracing, metrics registry, cross-process
timelines.

Two halves with one goal — making "where did the wall time go" a
machine-readable artifact instead of scattered log lines:

* :mod:`repro.telemetry.tracing` — ``span()`` context managers over monotonic
  clocks exporting Chrome trace-event JSON / JSONL, near-zero overhead when
  disabled, one lane per thread/process/rank (forked replica workers merge
  onto the parent timeline).
* :mod:`repro.telemetry.metrics` — named counter/gauge/latency/histogram
  instruments plus collector adapters behind a versioned snapshot contract
  and optional Prometheus text exposition.
"""

from repro.telemetry.metrics import (
    BatchSizeHistogram,
    Counter,
    DEFAULT_PERCENTILES,
    Gauge,
    LatencyTracker,
    MetricsRegistry,
    SNAPSHOT_SCHEMA_VERSION,
    validate_snapshot,
)
from repro.telemetry.tracing import (
    TRACE_SCHEMA_VERSION,
    TraceSession,
    convert_trace,
    current_session,
    disable,
    enable,
    enabled,
    format_summary,
    instant,
    load_trace,
    record_span,
    reset_after_fork,
    span,
    summarize_trace,
    write_events,
    write_trace,
)

__all__ = [
    "BatchSizeHistogram",
    "Counter",
    "DEFAULT_PERCENTILES",
    "Gauge",
    "LatencyTracker",
    "MetricsRegistry",
    "SNAPSHOT_SCHEMA_VERSION",
    "TRACE_SCHEMA_VERSION",
    "TraceSession",
    "convert_trace",
    "current_session",
    "disable",
    "enable",
    "enabled",
    "format_summary",
    "instant",
    "load_trace",
    "record_span",
    "reset_after_fork",
    "span",
    "summarize_trace",
    "validate_snapshot",
    "write_events",
    "write_trace",
]
