"""Span tracing: monotonic-clock timelines exportable as Chrome trace events.

The tracer answers "where did the wall time go" for any run — training steps,
pipeline loads, serve requests — with one machine-readable artifact instead
of four ad-hoc log lines.  Design constraints, in order:

1. **Near-zero overhead when disabled.**  :func:`span` checks one module
   global and returns a shared no-op context manager; instrumented hot loops
   that already hold ``perf_counter`` timestamps use :func:`record_span`
   behind a single ``enabled()`` branch, so a disabled run pays a handful of
   predictable branches per step and allocates nothing.
2. **One lane per thread, process and rank.**  Events carry ``(pid, tid)``;
   worker threads get lanes automatically, forked replica workers call
   :func:`reset_after_fork` (clearing inherited parent events) and ship their
   buffers back over the existing error-pipe channel for the parent to
   :meth:`~TraceSession.absorb` — ``perf_counter_ns`` is CLOCK_MONOTONIC on
   Linux, so child timestamps land directly on the parent's timeline.
3. **Standard outputs.**  :func:`write_trace` emits Chrome trace-event JSON
   (loadable in Perfetto / ``chrome://tracing``) or a JSONL structured event
   log; :func:`load_trace` reads either back and :func:`summarize_trace`
   aggregates per-phase totals and step coverage.

Nesting is tracked on a thread-local stack: ``span("fwd")`` inside
``span("step")`` records ``parent="step"`` and ``depth=1``, which is what
lets :func:`summarize_trace` report how much of each step the instrumented
phases account for.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

#: Trace schema version stamped into every export (JSONL header and the
#: Chrome JSON ``otherData`` block).  Bump when event fields change.
TRACE_SCHEMA_VERSION = 1

#: Event tuple layout (kept as tuples internally — dicts only at export).
_NAME, _CAT, _TS_NS, _DUR_NS, _PID, _TID, _DEPTH, _PARENT, _ARGS = range(9)

# Module-level fast path: `span()` reads this one global before anything else.
_enabled = False
_session: Optional["TraceSession"] = None
_state_lock = threading.Lock()


class TraceSession:
    """One recording: an event buffer plus lane (process/thread) metadata."""

    def __init__(self, label: str = "main"):
        self.label = label
        self.pid = os.getpid()
        self.started_ns = time.perf_counter_ns()
        self.started_unix = time.time()
        # deque.append is atomic under the GIL — no lock on the record path.
        self.events: deque = deque()
        self._threads: Dict[Tuple[int, int], str] = {}
        self._processes: Dict[int, str] = {self.pid: label}
        self._meta_lock = threading.Lock()

    # ------------------------------------------------------------------ #
    def register_thread(self, pid: int, tid: int, name: str) -> None:
        with self._meta_lock:
            self._threads.setdefault((pid, tid), name)

    def register_process(self, pid: int, label: str) -> None:
        with self._meta_lock:
            self._processes.setdefault(pid, label)

    def record(self, name: str, cat: str, ts_ns: int, dur_ns: int,
               depth: int, parent: Optional[str],
               args: Optional[Dict[str, Any]]) -> None:
        self.events.append((name, cat, ts_ns, dur_ns, os.getpid(),
                            threading.get_ident(), depth, parent, args))

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------ #
    # Cross-process merge (the dp_mode=process per-rank timelines)
    # ------------------------------------------------------------------ #
    def drain_payload(self) -> Dict[str, Any]:
        """Detach and return everything recorded so far, picklable.

        Used by forked replica workers: the payload travels over the
        per-worker pipe and the parent :meth:`absorb`\\ s it into the run's
        single timeline.
        """
        events = list(self.events)
        self.events.clear()
        with self._meta_lock:
            threads = dict(self._threads)
            processes = dict(self._processes)
        return {
            "label": self.label,
            "pid": self.pid,
            "threads": {f"{pid}:{tid}": name for (pid, tid), name in threads.items()},
            "processes": processes,
            "events": events,
        }

    def absorb(self, payload: Optional[Dict[str, Any]]) -> int:
        """Merge a worker's :meth:`drain_payload` into this session."""
        if not payload:
            return 0
        for event in payload.get("events", ()):
            self.events.append(tuple(event))
        with self._meta_lock:
            for key, name in payload.get("threads", {}).items():
                pid, tid = key.split(":")
                self._threads.setdefault((int(pid), int(tid)), name)
            for pid, label in payload.get("processes", {}).items():
                self._processes.setdefault(int(pid), label)
        return len(payload.get("events", ()))

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def event_dicts(self) -> List[Dict[str, Any]]:
        """Events as plain dicts with session-relative microsecond stamps."""
        base = self.started_ns
        out = []
        for ev in self.events:
            record = {
                "name": ev[_NAME],
                "cat": ev[_CAT],
                "ts_us": (ev[_TS_NS] - base) / 1e3,
                "dur_us": ev[_DUR_NS] / 1e3,
                "pid": ev[_PID],
                "tid": ev[_TID],
                "depth": ev[_DEPTH],
                "parent": ev[_PARENT],
            }
            if ev[_ARGS]:
                record["args"] = ev[_ARGS]
            out.append(record)
        return out

    def lane_metadata(self) -> List[Dict[str, Any]]:
        """Chrome metadata events naming every process and thread lane."""
        with self._meta_lock:
            threads = dict(self._threads)
            processes = dict(self._processes)
        seen_pids = {ev[_PID] for ev in self.events}
        meta: List[Dict[str, Any]] = []
        for pid in sorted(seen_pids | set(processes)):
            label = processes.get(pid, f"pid {pid}")
            meta.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                         "args": {"name": label}})
        for (pid, tid), name in sorted(threads.items()):
            meta.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                         "args": {"name": name}})
        return meta

    def chrome_document(self) -> Dict[str, Any]:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        trace_events = self.lane_metadata()
        for record in self.event_dicts():
            event = {
                "name": record["name"],
                "cat": record["cat"] or "default",
                "ph": "X",
                "ts": record["ts_us"],
                "dur": record["dur_us"],
                "pid": record["pid"],
                "tid": record["tid"],
                "args": dict(record.get("args") or {}),
            }
            event["args"]["depth"] = record["depth"]
            if record["parent"]:
                event["args"]["parent"] = record["parent"]
            trace_events.append(event)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": "repro.telemetry.trace",
                "schema_version": TRACE_SCHEMA_VERSION,
                "session": self.label,
                "started_unix": self.started_unix,
            },
        }


# --------------------------------------------------------------------------- #
# Thread-local span stacks
# --------------------------------------------------------------------------- #
class _ThreadState(threading.local):
    def __init__(self):
        self.stack: List[str] = []
        self.registered_session: Optional[TraceSession] = None


_thread_state = _ThreadState()


def _touch_thread(session: TraceSession) -> _ThreadState:
    state = _thread_state
    if state.registered_session is not session:
        session.register_thread(os.getpid(), threading.get_ident(),
                                threading.current_thread().name)
        state.registered_session = session
    return state


# --------------------------------------------------------------------------- #
# The public recording API
# --------------------------------------------------------------------------- #
class _NoopSpan:
    """Shared do-nothing context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        return False


_NOOP = _NoopSpan()


class _Span:
    __slots__ = ("name", "cat", "args", "_start_ns", "_session", "_state")

    def __init__(self, name: str, cat: str, args: Optional[Dict[str, Any]]):
        self.name = name
        self.cat = cat
        self.args = args

    def __enter__(self):
        session = _session
        self._session = session
        if session is None:
            self._state = None
            return self
        self._state = _touch_thread(session)
        self._state.stack.append(self.name)
        self._start_ns = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info):
        end_ns = time.perf_counter_ns()
        session, state = self._session, self._state
        if session is None or state is None:
            return False
        stack = state.stack
        stack.pop()
        depth = len(stack)
        parent = stack[-1] if stack else None
        session.record(self.name, self.cat, self._start_ns,
                       end_ns - self._start_ns, depth, parent, self.args)
        return False


def enabled() -> bool:
    """Is a trace session currently recording?"""
    return _enabled


def span(name: str, cat: str = "", **args: Any):
    """Context manager timing one nested span on the calling thread's stack.

    Disabled tracing returns a shared no-op — the call costs one global read
    (plus building ``args`` when keyword arguments are passed; hot loops
    should pass none, or use :func:`record_span` with existing timestamps).
    """
    if not _enabled:
        return _NOOP
    return _Span(name, cat, args or None)


def record_span(name: str, start_s: float, end_s: float, cat: str = "",
                parent: Optional[str] = None, **args: Any) -> None:
    """Record a completed span from existing ``time.perf_counter()`` stamps.

    The zero-allocation path for hot loops that already time themselves
    (trainer steps, the batcher worker): no context manager, no extra clock
    reads.  ``parent`` declares logical nesting explicitly since the span
    never lived on the thread-local stack.
    """
    session = _session
    if session is None:
        return
    _touch_thread(session)
    session.record(name, cat, int(start_s * 1e9), int((end_s - start_s) * 1e9),
                   1 if parent else 0, parent, args or None)


def instant(name: str, cat: str = "", **args: Any) -> None:
    """Record a zero-duration marker event."""
    session = _session
    if session is None:
        return
    _touch_thread(session)
    session.record(name, cat, time.perf_counter_ns(), 0, 0, None, args or None)


# --------------------------------------------------------------------------- #
# Session lifecycle
# --------------------------------------------------------------------------- #
def enable(label: str = "main") -> TraceSession:
    """Start a fresh recording session (replacing any active one)."""
    global _enabled, _session
    with _state_lock:
        session = TraceSession(label)
        _session = session
        _enabled = True
        _thread_state.registered_session = None
    return session


def disable() -> Optional[TraceSession]:
    """Stop recording; returns the finished session (if one was active)."""
    global _enabled, _session
    with _state_lock:
        session = _session
        _enabled = False
        _session = None
    return session


def current_session() -> Optional[TraceSession]:
    return _session


def reset_after_fork(label: str) -> Optional[TraceSession]:
    """Re-home the inherited session inside a forked worker.

    The child inherits the parent's enabled flag and a *copy* of its event
    buffer; recording those again would duplicate every parent span.  This
    clears the buffer, relabels the lane (e.g. ``"rank 1"``), and leaves the
    clock base untouched — CLOCK_MONOTONIC is system-wide, so child spans
    merge onto the parent timeline without any offset arithmetic.
    """
    session = _session
    if session is None:
        return None
    session.events.clear()
    session._threads.clear()
    session.label = label
    session.pid = os.getpid()
    session._processes = {session.pid: label}
    _thread_state.registered_session = None
    _thread_state.stack = []
    return session


# --------------------------------------------------------------------------- #
# File I/O: Chrome JSON and JSONL structured event log
# --------------------------------------------------------------------------- #
def write_trace(path: str, session: Optional[TraceSession] = None) -> int:
    """Write ``session`` to ``path``; format picked by extension.

    ``.jsonl`` gets the structured event log (header line + one JSON object
    per event); anything else gets Chrome trace-event JSON.  Returns the
    number of span events written.
    """
    session = session or _session
    if session is None:
        raise ValueError("no trace session to write (tracing was never enabled)")
    if path.endswith(".jsonl"):
        return _write_jsonl(path, session)
    document = session.chrome_document()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return sum(1 for ev in document["traceEvents"] if ev.get("ph") == "X")


def _write_jsonl(path: str, session: TraceSession) -> int:
    header = {
        "schema": "repro.telemetry.trace",
        "schema_version": TRACE_SCHEMA_VERSION,
        "session": session.label,
        "started_unix": session.started_unix,
        "lanes": [{"pid": m["pid"], "tid": m["tid"], "kind": m["name"],
                   "label": m["args"]["name"]} for m in session.lane_metadata()],
    }
    records = session.event_dicts()
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for record in records:
            handle.write(json.dumps(record) + "\n")
    return len(records)


def load_trace(path: str) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    """Read a trace written by :func:`write_trace` (either format).

    Returns ``(events, meta)`` where each event is a normalized dict with
    ``name / cat / ts_us / dur_us / pid / tid / depth / parent`` keys and
    ``meta`` carries the schema header plus lane labels.
    """
    with open(path, "r", encoding="utf-8") as handle:
        first = handle.read(1)
        handle.seek(0)
        if first == "{" and not path.endswith(".jsonl"):
            try:
                document = json.load(handle)
            except json.JSONDecodeError:
                handle.seek(0)
                return _load_jsonl(handle)
            if isinstance(document, dict) and "traceEvents" in document:
                return _load_chrome(document)
            raise ValueError(f"{path}: not a repro trace (no traceEvents key)")
        return _load_jsonl(handle)


def _load_chrome(document: Dict[str, Any]) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    lanes = {}
    events = []
    for event in document.get("traceEvents", ()):
        if event.get("ph") == "M":
            lanes[(event["pid"], event.get("tid", 0), event["name"])] = \
                event.get("args", {}).get("name", "")
        elif event.get("ph") == "X":
            args = dict(event.get("args") or {})
            events.append({
                "name": event.get("name", ""),
                "cat": event.get("cat", ""),
                "ts_us": float(event.get("ts", 0.0)),
                "dur_us": float(event.get("dur", 0.0)),
                "pid": event.get("pid", 0),
                "tid": event.get("tid", 0),
                "depth": int(args.pop("depth", 0)),
                "parent": args.pop("parent", None),
                "args": args,
            })
    meta = dict(document.get("otherData") or {})
    meta["lanes"] = [{"pid": pid, "tid": tid, "kind": kind, "label": label}
                     for (pid, tid, kind), label in sorted(lanes.items(), key=str)]
    return events, meta


def _load_jsonl(handle) -> Tuple[List[Dict[str, Any]], Dict[str, Any]]:
    header_line = handle.readline()
    if not header_line.strip():
        raise ValueError("empty trace file")
    meta = json.loads(header_line)
    if meta.get("schema") != "repro.telemetry.trace":
        raise ValueError(f"not a repro trace event log (schema={meta.get('schema')!r})")
    events = []
    for line in handle:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        record.setdefault("depth", 0)
        record.setdefault("parent", None)
        events.append(record)
    return events, meta


def write_events(path: str, events: Sequence[Dict[str, Any]],
                 meta: Dict[str, Any]) -> int:
    """Write already-loaded ``(events, meta)`` back out; format by extension.

    The inverse of :func:`load_trace` — what lets ``repro trace export``
    convert a JSONL event log into Perfetto-loadable Chrome JSON (and back)
    without re-running anything.
    """
    lanes = meta.get("lanes", [])
    header_meta = {
        "schema": "repro.telemetry.trace",
        "schema_version": meta.get("schema_version", TRACE_SCHEMA_VERSION),
        "session": meta.get("session", "main"),
        "started_unix": meta.get("started_unix", 0.0),
    }
    if path.endswith(".jsonl"):
        header = dict(header_meta)
        header["lanes"] = lanes
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            for record in events:
                handle.write(json.dumps(record) + "\n")
        return len(events)
    trace_events: List[Dict[str, Any]] = [
        {"ph": "M", "name": lane["kind"], "pid": lane["pid"],
         "tid": lane.get("tid", 0), "args": {"name": lane["label"]}}
        for lane in lanes
    ]
    for record in events:
        event = {
            "name": record["name"],
            "cat": record.get("cat") or "default",
            "ph": "X",
            "ts": record["ts_us"],
            "dur": record["dur_us"],
            "pid": record["pid"],
            "tid": record["tid"],
            "args": dict(record.get("args") or {}),
        }
        event["args"]["depth"] = record.get("depth", 0)
        if record.get("parent"):
            event["args"]["parent"] = record["parent"]
        trace_events.append(event)
    document = {"traceEvents": trace_events, "displayTimeUnit": "ms",
                "otherData": header_meta}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
        handle.write("\n")
    return len(events)


def convert_trace(src: str, dst: str) -> int:
    """Load ``src`` (either format) and rewrite it as ``dst``'s format."""
    events, meta = load_trace(src)
    return write_events(dst, events, meta)


# --------------------------------------------------------------------------- #
# Aggregation (the `repro trace summary` verb and the CI coverage gate)
# --------------------------------------------------------------------------- #
def summarize_trace(events: Sequence[Dict[str, Any]]) -> Dict[str, Any]:
    """Per-phase totals, lane census, and step coverage for one trace.

    ``coverage`` answers the acceptance question directly: of the wall time
    inside ``step`` spans, how much is accounted for by spans that declare
    ``parent == "step"`` (data_wait / forward / backward / allreduce /
    optimizer / ...).
    """
    phases: Dict[str, Dict[str, float]] = {}
    lanes = set()
    t_min, t_max = float("inf"), float("-inf")
    step_total_us = 0.0
    step_child_us: Dict[str, float] = {}
    for event in events:
        lanes.add((event["pid"], event["tid"]))
        name = event["name"]
        dur = float(event["dur_us"])
        entry = phases.setdefault(name, {"count": 0, "total_us": 0.0, "max_us": 0.0})
        entry["count"] += 1
        entry["total_us"] += dur
        entry["max_us"] = max(entry["max_us"], dur)
        t_min = min(t_min, float(event["ts_us"]))
        t_max = max(t_max, float(event["ts_us"]) + dur)
        if name == "step":
            step_total_us += dur
        elif event.get("parent") == "step":
            step_child_us[name] = step_child_us.get(name, 0.0) + dur
    summary: Dict[str, Any] = {
        "events": len(events),
        "lanes": len(lanes),
        "wall_ms": (t_max - t_min) / 1e3 if events else 0.0,
        "phases": {
            name: {
                "count": int(entry["count"]),
                "total_ms": entry["total_us"] / 1e3,
                "mean_ms": entry["total_us"] / entry["count"] / 1e3,
                "max_ms": entry["max_us"] / 1e3,
            }
            for name, entry in sorted(phases.items(),
                                      key=lambda kv: -kv[1]["total_us"])
        },
    }
    if step_total_us > 0:
        covered = sum(step_child_us.values())
        summary["coverage"] = {
            "step_total_ms": step_total_us / 1e3,
            "phase_total_ms": covered / 1e3,
            "fraction": covered / step_total_us,
            "by_phase": {name: us / step_total_us
                         for name, us in sorted(step_child_us.items(),
                                                key=lambda kv: -kv[1])},
        }
    return summary


def format_summary(summary: Dict[str, Any]) -> str:
    """Plain-text rendering of :func:`summarize_trace` for the CLI."""
    lines = [f"events={summary['events']} lanes={summary['lanes']} "
             f"wall={summary['wall_ms']:.3f}ms"]
    if summary["phases"]:
        width = max(len(name) for name in summary["phases"])
        lines.append(f"{'phase':>{width}}  {'count':>7}  {'total_ms':>10}  "
                     f"{'mean_ms':>9}  {'max_ms':>9}")
        for name, entry in summary["phases"].items():
            lines.append(f"{name:>{width}}  {entry['count']:>7d}  "
                         f"{entry['total_ms']:>10.3f}  {entry['mean_ms']:>9.3f}  "
                         f"{entry['max_ms']:>9.3f}")
    coverage = summary.get("coverage")
    if coverage:
        lines.append(f"step coverage: {100 * coverage['fraction']:.1f}% of "
                     f"{coverage['step_total_ms']:.3f}ms inside step spans is "
                     f"attributed to instrumented phases")
    return "\n".join(lines)


__all__ = [
    "TRACE_SCHEMA_VERSION",
    "TraceSession",
    "convert_trace",
    "current_session",
    "disable",
    "enable",
    "enabled",
    "format_summary",
    "instant",
    "load_trace",
    "record_span",
    "reset_after_fork",
    "span",
    "summarize_trace",
    "write_events",
    "write_trace",
]
