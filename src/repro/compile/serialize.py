"""Serialize inference plans into artifact manifests.

An inference capture (no-grad forward, every op's ``needs`` is ``None``) is a
pure dataflow program over the model's parameters and buffers plus the batch
input — no gradient state, no backend scratch (the conv/pool inference paths
use the module-level geometry cache, not the arena), no RNG.  That makes it
serializable: we store the **unfused** captured records as
``{"op": class, "srcs", "dst", state...}`` steps, the leaf slots as symbolic
references into the model's ``named_parameters`` / ``named_buffers`` name
space, and any remaining constant arrays as opaque payload blobs.  The loader
rebuilds the records against the *loaded* model's tensors and re-runs the
same chain-fusion pass the capture path uses, so a deserialized plan replays
exactly like a freshly captured one.

Anything outside this fragment (a patch, a refresh, a stat hook, a non-empty
take schedule, an op without a codec) raises :class:`CaptureError` — callers
treat that as "this artifact ships without a plan", never as a hard failure.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.compile.graph import CaptureContext, CapturedNode, CaptureError
from repro.compile.plan import CompiledPlan, _fuse_chains
from repro.tensor import functional as _func
from repro.tensor import ops as _ops

PLAN_FORMAT_VERSION = 1

# ---------------------------------------------------------------------------- #
# Per-op codecs: encode ctor-equivalent state as JSON-safe dicts.
# Ops whose inference forward needs no state share the trivial codec.
# ---------------------------------------------------------------------------- #


def _tup(v):
    """Recursively turn JSON lists back into the tuples the ops expect."""
    if isinstance(v, list):
        return tuple(_tup(e) for e in v)
    return v


_STATELESS = {
    _ops.AddOp: "add", _ops.MulOp: "mul", _ops.NegOp: "neg", _ops.DivOp: "div",
    _ops.ExpOp: "exp", _ops.LogOp: "log", _ops.TanhOp: "tanh",
    _ops.SigmoidOp: "sigmoid", _ops.ReluOp: "relu", _ops.GeluOp: "gelu",
    _ops.AbsOp: "abs", _ops.CloneOp: "clone", _ops.MatMulOp: "matmul",
}


def _encode_index(index, consts: List[np.ndarray]):
    if isinstance(index, (int, np.integer)):
        return {"int": int(index)}
    if isinstance(index, slice):
        return {"slice": [index.start, index.stop, index.step]}
    if isinstance(index, np.ndarray):
        consts.append(index)
        return {"const": len(consts) - 1}
    if isinstance(index, tuple):
        return {"tuple": [_encode_index(e, consts) for e in index]}
    if index is None:
        return {"none": True}
    raise CaptureError(f"getitem index {type(index).__name__} is not serializable")


def _decode_index(enc, consts):
    if "int" in enc:
        return enc["int"]
    if "slice" in enc:
        return slice(*enc["slice"])
    if "const" in enc:
        return consts[enc["const"]]
    if "tuple" in enc:
        return tuple(_decode_index(e, consts) for e in enc["tuple"])
    return None


def _encode_op(op, consts: List[np.ndarray]) -> Dict:
    cls = type(op)
    tag = _STATELESS.get(cls)
    if tag is not None:
        return {"op": tag}
    if cls is _ops.PowOp:
        return {"op": "pow", "exponent": float(op.exponent)}
    if cls is _ops.ClipOp:
        return {"op": "clip", "low": float(op.low), "high": float(op.high)}
    if cls is _ops.SumOp:
        return {"op": "sum", "axis": op.axis, "keepdims": bool(op.keepdims)}
    if cls is _ops.MaxOp:
        return {"op": "max", "axis": op.axis, "keepdims": bool(op.keepdims)}
    if cls is _ops.ReshapeOp:
        return {"op": "reshape", "shape": list(op.shape)}
    if cls is _ops.TransposeOp:
        return {"op": "transpose", "axes": list(op.axes)}
    if cls is _ops.GetItemOp:
        return {"op": "getitem", "index": _encode_index(op.index, consts)}
    if cls is _ops.PadOp:
        return {"op": "pad", "pad_width": [list(p) for p in op.pad_width]}
    if cls is _ops.ConcatOp:
        return {"op": "concat", "axis": int(op.axis)}
    if cls is _func.Conv2dOp:
        return {"op": "conv2d", "stride": op.stride, "padding": op.padding}
    if cls is _func.MaxPool2dOp:
        return {"op": "max_pool2d", "kernel": list(op.kernel),
                "stride": op.stride, "padding": op.padding}
    if cls is _func.AvgPool2dOp:
        return {"op": "avg_pool2d", "kernel": list(op.kernel),
                "stride": op.stride, "padding": op.padding}
    if cls is _func.SoftmaxOp:
        return {"op": "softmax", "axis": int(op.axis)}
    if cls is _func.LogSoftmaxOp:
        return {"op": "log_softmax", "axis": int(op.axis)}
    if cls is _func.LinearActOp:
        return {"op": "linear_act", "activation": op.activation}
    if cls is _func.AttentionWeightsOp:
        enc = {"op": "attention_weights", "scale": float(op.scale)}
        if op.bias is not None:
            consts.append(np.asarray(op.bias))
            enc["bias"] = len(consts) - 1
        return enc
    raise CaptureError(f"op {op.name!r} has no serialization codec")


def _decode_op(enc: Dict, consts):
    tag = enc["op"]
    for cls, t in _STATELESS.items():
        if t == tag:
            return cls()
    if tag == "pow":
        return _ops.PowOp(enc["exponent"])
    if tag == "clip":
        return _ops.ClipOp(enc["low"], enc["high"])
    if tag == "sum":
        return _ops.SumOp(axis=_tup(enc["axis"]), keepdims=enc["keepdims"])
    if tag == "max":
        return _ops.MaxOp(axis=_tup(enc["axis"]), keepdims=enc["keepdims"])
    if tag == "reshape":
        return _ops.ReshapeOp(tuple(enc["shape"]))
    if tag == "transpose":
        return _ops.TransposeOp(tuple(enc["axes"]))
    if tag == "getitem":
        return _ops.GetItemOp(_decode_index(enc["index"], consts))
    if tag == "pad":
        return _ops.PadOp(tuple(tuple(p) for p in enc["pad_width"]))
    if tag == "concat":
        return _ops.ConcatOp(enc["axis"])
    if tag == "conv2d":
        return _func.Conv2dOp(_tup(enc["stride"]), _tup(enc["padding"]))
    if tag == "max_pool2d":
        return _func.MaxPool2dOp(tuple(enc["kernel"]), _tup(enc["stride"]),
                                 _tup(enc["padding"]))
    if tag == "avg_pool2d":
        return _func.AvgPool2dOp(tuple(enc["kernel"]), _tup(enc["stride"]),
                                 _tup(enc["padding"]))
    if tag == "softmax":
        return _func.SoftmaxOp(enc["axis"])
    if tag == "log_softmax":
        return _func.LogSoftmaxOp(enc["axis"])
    if tag == "linear_act":
        return _func.LinearActOp(enc["activation"])
    if tag == "attention_weights":
        bias = consts[enc["bias"]] if "bias" in enc else None
        return _func.AttentionWeightsOp(enc["scale"], bias)
    raise CaptureError(f"unknown serialized op tag {tag!r}")


# ---------------------------------------------------------------------------- #
# Plan <-> manifest payload
# ---------------------------------------------------------------------------- #


def serialize_inference_plan(cap: CaptureContext, output, model,
                             fwd_takes) -> Tuple[Dict, List[np.ndarray]]:
    """Lower a no-grad capture to a manifest payload + constant blobs.

    Returns ``(payload, const_arrays)``; ``const_arrays[i]`` must be stored
    by the caller under a key the loader maps back to index ``i``.  Raises
    :class:`CaptureError` when the capture falls outside the serializable
    fragment.
    """
    if cap.patches or cap.refreshes or cap.stat_hooks:
        raise CaptureError("captures with replay-time patches/refreshes/hooks "
                           "are not serializable")
    if fwd_takes:
        raise CaptureError("captures with backend take schedules are not "
                           "serializable")
    out_slot = cap.by_tensor.get(id(output))
    if out_slot is None or id(output) not in cap.node_by_tensor:
        raise CaptureError("serialized output is not a captured op result")

    param_paths = {id(p): path for path, p in model.named_parameters()}
    param_data_paths = {id(p.data): path for path, p in model.named_parameters()}
    buffer_data = {id(b.data): path for path, b in model.named_buffers()}

    consts: List[np.ndarray] = []
    leaves: List[Dict] = []
    for slot, t in cap.param_reads:
        path = param_paths.get(id(t)) or param_data_paths.get(id(t.data))
        if path is None:
            raise CaptureError("a gradient-bearing leaf is not one of the "
                               "model's named parameters")
        leaves.append({"slot": slot, "kind": "param", "path": path})
    for slot, arr in cap.consts:
        path = buffer_data.get(id(arr))
        if path is not None:
            leaves.append({"slot": slot, "kind": "buffer", "path": path})
            continue
        base = arr.base
        path = buffer_data.get(id(base)) if base is not None else None
        if path is not None:
            leaves.append({"slot": slot, "kind": "buffer_view", "path": path,
                           "reshape": list(arr.shape)})
            continue
        consts.append(arr)
        leaves.append({"slot": slot, "kind": "const", "const": len(consts) - 1})

    steps = []
    for node in cap.records:
        enc = _encode_op(node.op, consts)
        enc["srcs"] = list(node.srcs)
        enc["dst"] = node.dst
        steps.append(enc)

    payload = {
        "version": PLAN_FORMAT_VERSION,
        "input_shapes": [list(a.shape) for a in cap.arrays],
        "nslots": cap.nslots,
        "feeds": [list(f) for f in cap.feeds],
        "leaves": leaves,
        "steps": steps,
        "output": out_slot,
    }
    return payload, consts


def deserialize_inference_plan(payload: Dict, consts: List[np.ndarray],
                               model, be) -> CompiledPlan:
    """Rebuild a ready-to-replay :class:`CompiledPlan` from a manifest payload.

    Leaf references bind to the *loaded* model's parameters and buffers, so
    the plan tracks any later in-place weight updates exactly like a live
    capture would.
    """
    if payload.get("version") != PLAN_FORMAT_VERSION:
        raise CaptureError(f"unsupported plan format version "
                           f"{payload.get('version')!r}")
    params = dict(model.named_parameters())
    buffers = dict(model.named_buffers())

    param_reads = []
    template: list = [None] * payload["nslots"]
    for leaf in payload["leaves"]:
        slot = leaf["slot"]
        kind = leaf["kind"]
        if kind == "param":
            t = params.get(leaf["path"])
            if t is None:
                raise CaptureError(f"plan references unknown parameter "
                                   f"{leaf['path']!r}")
            param_reads.append((slot, t))
        elif kind == "buffer":
            b = buffers.get(leaf["path"])
            if b is None:
                raise CaptureError(f"plan references unknown buffer "
                                   f"{leaf['path']!r}")
            template[slot] = b.data
        elif kind == "buffer_view":
            b = buffers.get(leaf["path"])
            if b is None:
                raise CaptureError(f"plan references unknown buffer "
                                   f"{leaf['path']!r}")
            template[slot] = b.data.reshape(tuple(leaf["reshape"]))
        elif kind == "const":
            template[slot] = consts[leaf["const"]]
        else:
            raise CaptureError(f"unknown plan leaf kind {kind!r}")

    records = []
    for enc in payload["steps"]:
        op = _decode_op(enc, consts)
        op.needs = None
        records.append(CapturedNode(op, None, tuple(enc["srcs"]), enc["dst"], None))

    out_slot = payload["output"]
    fwd_steps = _fuse_chains(records, {out_slot})

    plan = CompiledPlan(
        backend=be,
        nslots=payload["nslots"],
        template=template,
        feeds=tuple(tuple(f) for f in payload["feeds"]),
        param_reads=tuple(param_reads),
        refreshes=(),
        patches=(),
        hooks=(),
        fwd_steps=fwd_steps,
        fwd_takes=[],
        loss_slot=out_slot,
        aux_slots={},
    )
    plan.ready = True
    return plan
