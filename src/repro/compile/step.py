"""Keyed plan cache and the compiled training-step driver.

:class:`StepCompiler` owns one plan per ``(model, input signature, mode,
parameter structure)`` key.  The first step under a key runs eagerly while
the capture hook records it (the forward through the user's thunk, the
backward through :meth:`CompiledPlan.record_backward`, which *is* that
step's backward); every later step replays the static schedule with no
Python graph construction at all.

Guards — anything that changes the arithmetic forces a recapture or a
permanent eager fallback:

* batch array shapes/dtypes and ``model.training`` / grad mode are part of
  the key;
* the parameter-structure fingerprint is the identity of every parameter's
  backing array, so Cuttlefish's mid-run rank switch (which swaps modules
  and their parameters) lands on a fresh key while in-place optimizer
  updates do not;
* a capture the context cannot prove replayable (see
  :mod:`repro.compile.graph`) blacklists its key: those steps run eagerly,
  bit-identically, forever.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Optional

import numpy as np

from repro.compile.graph import CaptureContext, CaptureError
from repro.compile.plan import CompiledPlan, build_forward_plan
from repro.telemetry import tracing as _tracing
from repro.tensor import backend as _backend
from repro.tensor import tensor as _tensor_core
from repro.tensor.tensor import Tensor

# Capture mutates module-global state (the tensor capture hook, the backend
# take schedule) and replay advances backend cursors; one step runs at a
# time per process.
_COMPILE_LOCK = threading.RLock()

_MAX_BLACKLIST = 256


def backend_compiles(be=None) -> bool:
    """Whether ``be`` (default: the active backend) wants compiled plans."""
    be = be if be is not None else _backend.get_backend()
    return bool(getattr(be, "compiled_plans", False))


class StepHandle:
    """Result of :meth:`StepCompiler.forward` — a loss plus a backward."""

    __slots__ = ("loss", "aux", "was_capture", "was_replay")

    def backward(self) -> None:  # pragma: no cover - interface
        raise NotImplementedError


class _EagerHandle(StepHandle):
    """Plain eager execution (fallback path)."""

    def __init__(self, loss):
        self.loss = loss
        self.aux = {}
        self.was_capture = False
        self.was_replay = False

    def backward(self) -> None:
        self.loss.backward()


class _CaptureHandle(StepHandle):
    """The capture step: eager forward already ran; backward records the plan."""

    def __init__(self, compiler: "StepCompiler", key, plan: CompiledPlan,
                 cap: CaptureContext, loss, aux: Dict[str, object], be):
        self.loss = loss
        self.aux = aux
        self.was_capture = True
        self.was_replay = False
        self._compiler = compiler
        self._key = key
        self._plan = plan
        self._cap = cap
        self._be = be

    def backward(self) -> None:
        be = self._be
        traced = _tracing.enabled()
        start = time.perf_counter() if traced else 0.0
        with _COMPILE_LOCK:
            bwd_takes: list = []
            be.begin_record(bwd_takes)
            try:
                self._plan.record_backward(self._cap, self.loss, be, bwd_takes)
            finally:
                be.end_record()
            self._compiler._install(self._key, self._plan)
        self._cap = None  # release capture-step tensors
        if traced:
            _tracing.record_span("compile_capture_backward", start,
                                 time.perf_counter(), cat="compile")


class _ReplayHandle(StepHandle):
    """A replayed step: values live in the plan's slot table."""

    __slots__ = ("_plan", "_vals", "_be")

    def __init__(self, plan: CompiledPlan, vals: list, be):
        self._plan = plan
        self._vals = vals
        self._be = be
        self.was_capture = False
        self.was_replay = True
        self.loss = Tensor(vals[plan.loss_slot])
        self.aux = {name: Tensor(vals[slot]) for name, slot in plan.aux_slots.items()}

    def backward(self) -> None:
        traced = _tracing.enabled()
        start = time.perf_counter() if traced else 0.0
        with _COMPILE_LOCK:
            self._plan.run_backward(self._be)
        # loss/aux tensors were extracted in __init__ and the backward has
        # consumed every op-saved activation, so drop the slot table now
        # rather than carrying a full activation set into the next step.
        self._vals = None
        if traced:
            _tracing.record_span("replay_backward", start,
                                 time.perf_counter(), cat="compile")


class StepCompiler:
    """Capture-once / replay-forever driver for training and inference steps."""

    def __init__(self, max_plans: int = 8):
        self.max_plans = max_plans
        self._plans: "OrderedDict[tuple, CompiledPlan]" = OrderedDict()
        self._blacklist: set = set()
        self.stats = {"captures": 0, "replays": 0, "fallbacks": 0}

    # ------------------------------------------------------------------ #
    def forward(self, model, batch, thunk: Callable[[], object],
                aux: Optional[Callable[[], Dict[str, object]]] = None) -> StepHandle:
        """Run one step's forward: replay if a plan matches, capture otherwise.

        ``batch`` is the step's input arrays (non-arrays are ignored);
        ``thunk`` builds the loss (or output) tensor eagerly and is only
        called on capture and fallback steps.  ``aux`` optionally names
        extra graph tensors whose replayed values the caller wants back
        (e.g. logits for accuracy meters).
        """
        be = _backend.get_backend()
        if not backend_compiles(be):
            return _EagerHandle(thunk())
        arrays = [a for a in batch if isinstance(a, np.ndarray)]
        key = self._key(model, arrays)
        if key in self._blacklist:
            self.stats["fallbacks"] += 1
            return _EagerHandle(thunk())
        plan = self._plans.get(key)
        if plan is not None and plan.ready:
            self._plans.move_to_end(key)
            self.stats["replays"] += 1
            traced = _tracing.enabled()
            start = time.perf_counter() if traced else 0.0
            with _COMPILE_LOCK:
                vals = plan.run_forward(arrays, be)
            if traced:
                _tracing.record_span("replay_forward", start,
                                     time.perf_counter(), cat="compile")
            return _ReplayHandle(plan, vals, be)
        return self._capture(key, arrays, model, thunk, aux, be)

    # ------------------------------------------------------------------ #
    def _capture(self, key, arrays, model, thunk, aux, be) -> StepHandle:
        traced = _tracing.enabled()
        start = time.perf_counter() if traced else 0.0
        with _COMPILE_LOCK:
            if _tensor_core._capture is not None:
                # Nested capture (a thunk that itself drives a compiler):
                # observe-only is no longer well defined — run eagerly.
                return _EagerHandle(thunk())
            cap = CaptureContext(arrays)
            fwd_takes: list = []
            _tensor_core._capture = cap
            be.begin_record(fwd_takes)
            try:
                loss = thunk()
            finally:
                _tensor_core._capture = None
                be.end_record()
            aux_tensors = aux() if aux is not None else {}
            try:
                plan = build_forward_plan(cap, loss, aux_tensors, be, fwd_takes)
            except CaptureError:
                be.disown(fwd_takes)
                self._add_blacklist(key)
                self.stats["fallbacks"] += 1
                return _EagerHandle(loss)
            self.stats["captures"] += 1
        if traced:
            _tracing.record_span("compile_capture", start,
                                 time.perf_counter(), cat="compile")
        if not (loss.requires_grad and _tensor_core.is_grad_enabled()):
            # Inference plan: forward-only, ready immediately.
            plan.ready = True
            with _COMPILE_LOCK:
                self._install(key, plan)
            handle = _EagerHandle(loss)
            handle.was_capture = True
            handle.aux = aux_tensors
            return handle
        return _CaptureHandle(self, key, plan, cap, loss, aux_tensors, be)

    # ------------------------------------------------------------------ #
    def _key(self, model, arrays) -> tuple:
        params = tuple(id(p.data) for p in model.parameters()) if model is not None else ()
        return (
            id(model),
            tuple((a.shape, a.dtype.str) for a in arrays),
            bool(getattr(model, "training", True)),
            _tensor_core.is_grad_enabled(),
            params,
        )

    def _install(self, key, plan: CompiledPlan) -> None:
        self._plans[key] = plan
        self._plans.move_to_end(key)
        while len(self._plans) > self.max_plans:
            _, evicted = self._plans.popitem(last=False)
            evicted.release()

    def _add_blacklist(self, key) -> None:
        if len(self._blacklist) >= _MAX_BLACKLIST:
            self._blacklist.clear()
        self._blacklist.add(key)

    def reset(self) -> None:
        """Drop every plan (they recapture on next use)."""
        for plan in self._plans.values():
            plan.release()
        self._plans.clear()
        self._blacklist.clear()
