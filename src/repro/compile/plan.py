"""Static replay plans: flat step lists with pre-planned buffer lifetimes.

A :class:`CompiledPlan` is built from one captured step.  The forward half is
a flat list of ``(op, src_slots, dst_slot)`` steps over a dense value table;
runs of single-consumer unary elementwise ops are fused into chain steps
whose intermediates never touch the table.  The backward half is recorded by
*executing* the capture step's backward through the same code path the eager
engine uses — so the plan's gradient arithmetic is bit-identical by
construction — while assigning every intermediate gradient a **static
buffer** chosen by first/last-use liveness: a buffer is born at a node's
first gradient contribution, dies after the node's own backward step, and is
immediately reusable (keyed by shape and layout) for later nodes.  Replays
therefore perform no arena-key hashing at all: value slots are a list copy,
gradient buffers are fixed, and op-internal scratch is served positionally
from the take schedule the backend logged at capture time.
"""

from __future__ import annotations

import operator
import sys
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.compile.graph import CaptureContext, CaptureError
from repro.tensor import ops as _ops
from repro.tensor.backend import DEFAULT_DTYPE

# Unary elementwise ops eligible for forward chain fusion.  Their backward
# reads op-saved context (never the value table), so a fused intermediate
# only needs its slot written when some *other* consumer reads it — in which
# case the run is simply not fused across that point.
_CHAIN_OPS = (
    _ops.NegOp, _ops.ExpOp, _ops.LogOp, _ops.TanhOp, _ops.SigmoidOp,
    _ops.ReluOp, _ops.GeluOp, _ops.AbsOp, _ops.ClipOp, _ops.PowOp,
)

_F32 = np.dtype(DEFAULT_DTYPE)


class CompiledPlan:
    """A replayable forward (and optionally backward) schedule."""

    def __init__(self, backend, nslots: int, template: list,
                 feeds, param_reads, refreshes, patches, hooks,
                 fwd_steps, fwd_takes, loss_slot: int, aux_slots: Dict[str, int]):
        self.backend = backend
        self.nslots = nslots
        self._template = template
        self._feeds = feeds
        self._param_reads = param_reads
        self._refreshes = refreshes
        self._patches = patches
        self._hooks = hooks
        self._fwd_steps = fwd_steps
        self._fwd_takes = fwd_takes
        self.loss_slot = loss_slot
        self.aux_slots = aux_slots
        # Static op-call tally: one record_bulk per replay instead of one
        # dictionary update per step (the schedule never changes shape).
        counts: Dict[str, int] = {}
        for st in fwd_steps:
            if st[0] == 0:
                counts[st[1].name] = counts.get(st[1].name, 0) + 1
            else:
                for op, _needs in st[1]:
                    counts[op.name] = counts.get(op.name, 0) + 1
        self._op_counts = counts
        # Backward half (filled by record_backward for training plans).
        self._bwd_steps: Optional[list] = None
        self._bwd_takes: list = []
        self._gradbufs: List[np.ndarray] = []
        self._leafbufs: List[np.ndarray] = []
        self._seed: Optional[np.ndarray] = None
        self.ready = False
        self.has_backward = False

    # ------------------------------------------------------------------ #
    # Introspection (tests, docs)
    # ------------------------------------------------------------------ #
    @property
    def num_forward_steps(self) -> int:
        return len(self._fwd_steps)

    @property
    def num_chain_steps(self) -> int:
        return sum(1 for st in self._fwd_steps if st[0] == 1)

    @property
    def num_grad_buffers(self) -> int:
        return len(self._gradbufs)

    @property
    def num_backward_steps(self) -> int:
        return len(self._bwd_steps) if self._bwd_steps is not None else 0

    # ------------------------------------------------------------------ #
    # Replay
    # ------------------------------------------------------------------ #
    def run_forward(self, arrays, be) -> list:
        """Execute the static schedule; returns the filled value table."""
        vals = self._template[:]
        for slot, idx in self._feeds:
            vals[slot] = arrays[idx]
        for slot, t in self._param_reads:
            vals[slot] = t.data
        for fn in self._patches:
            fn(arrays)
        for slot, fn in self._refreshes:
            vals[slot] = fn()
        if self._fwd_takes:
            be.begin_replay(self._fwd_takes)
        try:
            asarray = np.asarray
            for st in self._fwd_steps:
                if st[0] == 0:
                    _, op, needs, srcs, dst = st
                    op.needs = needs
                    n = len(srcs)
                    if n == 1:
                        out = op.forward(be, vals[srcs[0]])
                    elif n == 2:
                        out = op.forward(be, vals[srcs[0]], vals[srcs[1]])
                    elif n == 3:
                        out = op.forward(be, vals[srcs[0]], vals[srcs[1]],
                                         vals[srcs[2]])
                    else:
                        out = op.forward(be, *[vals[s] for s in srcs])
                    vals[dst] = asarray(out, dtype=_F32)
                else:
                    _, subops, src, dst = st
                    x = vals[src]
                    for op, needs in subops:
                        op.needs = needs
                        x = asarray(op.forward(be, x), dtype=_F32)
                    vals[dst] = x
        finally:
            if self._fwd_takes:
                be.end_replay()
        be.record_bulk(self._op_counts)
        for getters, fn in self._hooks:
            fn(*[g(vals) for g in getters])
        return vals

    def run_backward(self, be) -> None:
        """Replay the recorded backward over the static gradient buffers."""
        if not self.has_backward:
            raise RuntimeError("this plan was captured without a backward pass")
        # Stolen-gradient slots (None entries) are rebound every replay, so
        # work over a copy of the buffer table; planned buffers stay put.
        bufs = self._gradbufs[:]
        seed = self._seed
        if self._bwd_takes:
            be.begin_replay(self._bwd_takes)
        try:
            for op, gsrc, contribs in self._bwd_steps:
                g = seed if gsrc < 0 else bufs[gsrc]
                grads = op.backward(be, g)
                for spec, gc in zip(contribs, grads):
                    if spec is None or gc is None:
                        continue
                    if spec[0] == 0:
                        buf = bufs[spec[1]]
                        if spec[2]:
                            np.copyto(buf, gc)
                        else:
                            np.add(buf, gc, out=buf)
                    elif spec[0] == 2:
                        # Stolen first touch: the op allocated this array
                        # fresh with the planned layout, so keep it instead
                        # of copying (record time proved no aliasing).
                        bufs[spec[1]] = gc.astype(_F32, copy=False)
                    else:
                        t = spec[1]
                        g32 = gc.astype(_F32, copy=False)
                        if t.grad is None:
                            buf = spec[2]
                            np.copyto(buf, g32)
                            t.grad = buf
                        else:
                            np.add(t.grad, g32, out=t.grad)
                op.release(be)
        finally:
            if self._bwd_takes:
                be.end_replay()

    # ------------------------------------------------------------------ #
    # Backward recording (runs ON the capture step; eager-equivalent)
    # ------------------------------------------------------------------ #
    def record_backward(self, cap: CaptureContext, loss, be, bwd_takes: list) -> None:
        """Run the capture step's backward, recording a static schedule.

        This *is* the backward pass for the capture step: the same topological
        order, the same accumulate arithmetic and the same op-release points
        as ``Tensor.backward`` on a pooling backend, instrumented to assign
        each intermediate gradient a liveness-pooled static buffer.
        """
        if not loss.requires_grad or loss._op_obj is None:
            raise CaptureError("loss is not a differentiable graph output")
        if loss.data.size != 1:
            raise CaptureError("compiled backward requires a scalar loss")

        # Topological order — identical to Tensor.backward.
        topo: list = []
        visited: set = set()
        stack: list = [(loss, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node._prev:
                if id(child) not in visited:
                    stack.append((child, False))

        seed = np.ones_like(loss.data).astype(DEFAULT_DTYPE, copy=True).reshape(loss.data.shape)
        loss.grad = seed
        self._seed = seed

        free: Dict[Tuple, List[int]] = {}   # (shape, strides) -> free buffer ids
        assigned: Dict[int, int] = {}       # id(tensor) -> buffer id
        specs: List[Tuple] = []             # buffer id -> (shape, strides)
        bufs: List[Optional[np.ndarray]] = []
        leaf_bufs: Dict[int, np.ndarray] = {}   # id(leaf tensor) -> static buffer
        proto_strides: Dict[Tuple, Tuple] = {}  # child layout -> take_like strides
        steps: list = []
        for node in reversed(topo):
            op = node._op_obj
            if op is None or node.grad is None:
                continue
            gsrc = -1 if node is loss else assigned[id(node)]
            input_grads = op.backward(be, node.grad)
            if not isinstance(input_grads, (list, tuple)):
                input_grads = list(input_grads)
            contribs: list = []
            for idx in range(len(node._prev)):
                child = node._prev[idx]
                g = input_grads[idx]
                if g is None or not child.requires_grad:
                    contribs.append(None)
                    continue
                if child._op_obj is not None:
                    if child.grad is None:
                        # Steal the gradient when the op allocated it fresh
                        # (sole reference: the grads container, the local and
                        # getrefcount's argument) with exactly the layout a
                        # ``take_like`` buffer would have — then replay binds
                        # the op's own output instead of memcpy'ing it into a
                        # planned buffer.  Views, reused buffers and oddly
                        # strided results keep the copying path.
                        key = (child.data.shape, child.data.strides,
                               child.data.dtype.str)
                        want = proto_strides.get(key)
                        if want is None:
                            want = np.empty_like(child.data).strides
                            proto_strides[key] = want
                        if (g.base is None and g.dtype == _F32
                                and g.shape == child.data.shape
                                and g.strides == want
                                and sys.getrefcount(g) == 3):
                            bid = len(bufs)
                            bufs.append(None)
                            specs.append(None)
                            child.grad = g
                            assigned[id(child)] = bid
                            contribs.append((2, bid))
                            continue
                        g32 = g.astype(DEFAULT_DTYPE, copy=False)
                        spec = (child.data.shape, child.data.strides)
                        pool = free.get(spec)
                        if pool:
                            bid = pool.pop()
                        else:
                            bid = len(bufs)
                            # Layout-matched, exactly like the arena's take_like.
                            bufs.append(np.empty_like(child.data))
                            specs.append(spec)
                        np.copyto(bufs[bid], g32)
                        child.grad = bufs[bid]
                        assigned[id(child)] = bid
                        contribs.append((0, bid, True))
                    else:
                        g32 = g.astype(DEFAULT_DTYPE, copy=False)
                        bid = assigned[id(child)]
                        np.add(child.grad, g32, out=child.grad)
                        contribs.append((0, bid, False))
                else:
                    # Leaf: accumulate into a plan-static buffer rather than
                    # through the arena — same arithmetic as the backend's
                    # ``accumulate``, but replay then needs no per-parameter
                    # pool lookup (and no take-schedule entry, so record and
                    # replay stay cursor-aligned).
                    g32 = g.astype(DEFAULT_DTYPE, copy=False)
                    buf = leaf_bufs.get(id(child))
                    if buf is None:
                        buf = np.empty_like(child.data)
                        leaf_bufs[id(child)] = buf
                        self._leafbufs.append(buf)
                    if child.grad is None:
                        np.copyto(buf, g32)
                        child.grad = buf
                    else:
                        np.add(child.grad, g32, out=child.grad)
                    contribs.append((1, child, buf))
            steps.append((op, gsrc, tuple(contribs)))
            if node is not loss:
                node.grad = None
                bid = assigned[id(node)]
                if specs[bid] is not None:   # stolen slots own no buffer
                    free.setdefault(specs[bid], []).append(bid)
            op.release(be)

        self._bwd_steps = steps
        self._bwd_takes = bwd_takes
        self._gradbufs = bufs
        own = getattr(be, "own", None)
        if own is not None:
            own(self._leafbufs)
        self.has_backward = True
        self.ready = True

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def release(self) -> None:
        """Return schedule ownership to the backend (plan eviction)."""
        disown = getattr(self.backend, "disown", None)
        if disown is not None:
            disown(self._fwd_takes)
            disown(self._bwd_takes)
            disown(self._leafbufs)


def build_forward_plan(cap: CaptureContext, loss, aux_tensors: Dict[str, object],
                       be, fwd_takes: list) -> CompiledPlan:
    """Lower a capture into a :class:`CompiledPlan` (forward half)."""
    err = cap.validate()
    if err is not None:
        raise CaptureError(err)
    loss_slot = cap.by_tensor.get(id(loss))
    if loss_slot is None or id(loss) not in cap.node_by_tensor:
        raise CaptureError("the step's output is not a captured op result")

    aux_slots: Dict[str, int] = {}
    for name, t in aux_tensors.items():
        if t is None:
            continue
        slot = cap.by_tensor.get(id(t))
        if slot is not None:
            aux_slots[name] = slot

    # Slots that must stay materialised in the value table.
    keep = {loss_slot}
    keep.update(aux_slots.values())

    hooks = []
    for fn, sources in cap.stat_hooks:
        getters = []
        for a in sources:
            node = cap.by_array.get(id(a))
            if node is not None:
                getters.append(operator.itemgetter(node.dst))
                keep.add(node.dst)
            else:
                src = cap.attr_sources.get(id(a))
                if src is None:
                    raise CaptureError("stat-hook source is neither a captured "
                                       "value nor a registered op attribute")
                getters.append(lambda vals, _op=src[0], _attr=src[1]: getattr(_op, _attr))
        hooks.append((tuple(getters), fn))

    fwd_steps = _fuse_chains(cap.records, keep)

    template: list = [None] * cap.nslots
    for slot, arr in cap.consts:
        template[slot] = arr

    return CompiledPlan(
        backend=be,
        nslots=cap.nslots,
        template=template,
        feeds=tuple(cap.feeds),
        param_reads=tuple(cap.param_reads),
        refreshes=tuple(cap.refreshes),
        patches=tuple(cap.patches),
        hooks=tuple(hooks),
        fwd_steps=fwd_steps,
        fwd_takes=fwd_takes,
        loss_slot=loss_slot,
        aux_slots=aux_slots,
    )


def _fuse_chains(records, keep: set) -> list:
    """Fuse maximal runs of single-consumer unary elementwise ops.

    A chain step executes its sub-ops back to back and writes only the final
    slot; intermediates are dead values whose slots the replay never touches
    (their gradients still flow — backward reads op-saved context, and the
    static gradient buffers are pre-seeded at record time).
    """
    consumers: Dict[int, int] = {}
    for node in records:
        for s in node.srcs:
            consumers[s] = consumers.get(s, 0) + 1

    def chainable(node) -> bool:
        return isinstance(node.op, _CHAIN_OPS) and len(node.srcs) == 1

    steps: list = []
    i = 0
    n = len(records)
    while i < n:
        node = records[i]
        if chainable(node):
            j = i
            while (j + 1 < n
                   and chainable(records[j + 1])
                   and records[j + 1].srcs[0] == records[j].dst
                   and consumers.get(records[j].dst, 0) == 1
                   and records[j].dst not in keep):
                j += 1
            if j > i:
                subops = tuple((records[k].op, records[k].needs) for k in range(i, j + 1))
                steps.append((1, subops, records[i].srcs[0], records[j].dst))
                i = j + 1
                continue
        steps.append((0, node.op, node.needs, node.srcs, node.dst))
        i += 1
    return steps
