"""Op-graph capture for the ``numpy-compiled`` backend.

A :class:`CaptureContext` is installed into ``repro.tensor.tensor._capture``
while one training (or inference) step runs eagerly; every ``apply_op``
reports the op it just executed, and the context classifies each tensor it
sees into one of five roles:

* **node** — the output of a captured op; gets a value slot written by the
  replay executor.
* **input** — a leaf whose backing array is one of the step's registered
  batch arrays; its slot is fed fresh on every replay.
* **param** — a leaf with ``requires_grad``; the live :class:`Tensor` is
  kept and its ``.data`` re-read on every replay (so in-place optimizer
  updates are picked up and replaced parameters invalidate the plan key).
* **refresh** — a leaf whose value must be regenerated per replay from a
  registered callable (dropout masks, drawn from the same persistent RNG so
  the mask stream is bit-identical to an eager run).
* **const** — anything else; the capture-step array is baked into the plan
  by reference (batch-norm eval statistics enter as views of the running
  buffers, so in-place updates still propagate).

A leaf whose array *is* another node's output (``detach()``) aliases that
node's slot instead of becoming a const, which keeps its replayed value
fresh while still blocking gradient flow (the plan's backward was recorded
from the live graph, where the detached edge does not exist).

Observation is pure: capture never changes what the eager step computes.
Anything the context cannot prove replayable sets :attr:`error`, and the
step compiler falls back to eager execution for that key permanently.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.tensor import ops as _ops


class CaptureError(Exception):
    """A captured graph cannot be replayed faithfully."""


class CapturedNode:
    """One captured op execution: ``vals[dst] = op.forward(*vals[srcs])``."""

    __slots__ = ("op", "needs", "srcs", "dst", "out")

    def __init__(self, op, needs, srcs: Tuple[int, ...], dst: int, out):
        self.op = op
        self.needs = needs
        self.srcs = srcs
        self.dst = dst
        self.out = out  # the output Tensor (dropped after plan build)


class CaptureContext:
    """Records one step's op graph while it executes eagerly."""

    def __init__(self, arrays: List[np.ndarray]):
        self.arrays = list(arrays)
        self.input_ids: Dict[int, int] = {id(a): i for i, a in enumerate(self.arrays)}
        self.records: List[CapturedNode] = []
        self.by_tensor: Dict[int, int] = {}          # id(Tensor) -> slot
        self.node_by_tensor: Dict[int, CapturedNode] = {}
        self.by_array: Dict[int, CapturedNode] = {}  # id(out.data) -> node
        self.keepalive: List = []                    # pins tensor ids during capture
        self.nslots = 0
        self.consts: List[Tuple[int, np.ndarray]] = []
        self.feeds: List[Tuple[int, int]] = []       # (slot, input index)
        self.param_reads: List[Tuple[int, object]] = []
        self.refreshes: List[Tuple[int, Callable[[], np.ndarray]]] = []
        self.patches: List[Callable] = []            # fn(arrays) per replay
        self.stat_hooks: List[Tuple[Callable, Tuple[np.ndarray, ...]]] = []
        self.attr_sources: Dict[int, Tuple[object, str]] = {}
        self._pending_refresh: Dict[int, Callable[[], np.ndarray]] = {}
        self.matched: set = set()                    # input indices seen in-graph
        self.error: Optional[str] = None

    # ------------------------------------------------------------------ #
    # apply_op hook
    # ------------------------------------------------------------------ #
    def on_op(self, op, inputs, out) -> None:
        if self.error is not None:
            return
        srcs = tuple(self._slot_of(t) for t in inputs)
        node = CapturedNode(op, op.needs, srcs, self._new_slot(), out)
        self.records.append(node)
        self.by_tensor[id(out)] = node.dst
        self.node_by_tensor[id(out)] = node
        self.by_array[id(out.data)] = node
        self.keepalive.append(out)
        self._patch_op_attrs(op)

    def _slot_of(self, t) -> int:
        slot = self.by_tensor.get(id(t))
        if slot is not None:
            return slot
        self.keepalive.append(t)
        fn = self._pending_refresh.pop(id(t), None)
        if fn is not None:
            slot = self._new_slot()
            self.refreshes.append((slot, fn))
        elif t.requires_grad:
            slot = self._new_slot()
            self.param_reads.append((slot, t))
        else:
            data = t.data
            idx = self.input_ids.get(id(data))
            if idx is not None:
                slot = self._new_slot()
                self.feeds.append((slot, idx))
                self.matched.add(idx)
            else:
                node = self.by_array.get(id(data))
                if node is not None:
                    slot = node.dst  # detach()-style alias of a node output
                else:
                    slot = self._new_slot()
                    self.consts.append((slot, data))
        self.by_tensor[id(t)] = slot
        return slot

    def _new_slot(self) -> int:
        slot = self.nslots
        self.nslots += 1
        return slot

    # ------------------------------------------------------------------ #
    # Batch-dependent op attributes
    # ------------------------------------------------------------------ #
    def _patch_op_attrs(self, op) -> None:
        """Generic patches for ops that bake a batch array as an attribute."""
        if isinstance(op, _ops.GetItemOp):
            index = op.index
            if isinstance(index, np.ndarray):
                idx = self.input_ids.get(id(index))
                if idx is not None:
                    self.matched.add(idx)

                    def _patch_index(arrays, _op=op, _i=idx):
                        _op.index = arrays[_i]

                    self.patches.append(_patch_index)
            elif isinstance(index, tuple) and any(
                    isinstance(e, np.ndarray) and id(e) in self.input_ids for e in index):
                self.error = ("getitem with a batch array inside a tuple index "
                              "cannot be patched for replay")
            return
        bias = getattr(op, "bias", None) if op.name == "attention_weights" else None
        if bias is not None and isinstance(bias, np.ndarray):
            idx = self.input_ids.get(id(bias))
            if idx is not None:
                self.matched.add(idx)

                def _patch_bias(arrays, _op=op, _i=idx):
                    _op.bias = arrays[_i]

                self.patches.append(_patch_bias)

    # ------------------------------------------------------------------ #
    # Registration API (called from repro.tensor.functional / repro.nn)
    # ------------------------------------------------------------------ #
    def register_attr_patch(self, op, dep_array: np.ndarray, fn: Callable) -> None:
        """Run ``fn(op, arrays[i])`` before each replay, where ``i`` is the
        input index of ``dep_array``.  The dependency must be one of the
        step's registered input arrays; otherwise the capture is rejected
        (a derived array would silently replay stale values)."""
        idx = self.input_ids.get(id(dep_array))
        if idx is None:
            self.error = (f"op {op.name!r} depends on an array that is not one "
                          "of the step's input arrays; cannot patch for replay")
            return
        self.matched.add(idx)
        self.patches.append(lambda arrays, _op=op, _i=idx, _fn=fn: _fn(_op, arrays[_i]))

    def register_refresh(self, tensor, fn: Callable[[], np.ndarray]) -> None:
        """Declare that ``tensor`` (a leaf about to be consumed) must be
        regenerated by ``fn()`` on every replay, in registration order."""
        self.keepalive.append(tensor)
        self._pending_refresh[id(tensor)] = fn

    def register_attr_source(self, array: np.ndarray, op, attr: str) -> None:
        """Declare that ``array`` is ``getattr(op, attr)``, refreshed by the
        op's forward (batch-norm statistics)."""
        self.attr_sources[id(array)] = (op, attr)

    def register_stat_hook(self, fn: Callable, *sources: np.ndarray) -> None:
        """Run ``fn(*current_values_of(sources))`` after each replayed
        forward (running-statistics updates)."""
        self.stat_hooks.append((fn, sources))

    # ------------------------------------------------------------------ #
    # Validation
    # ------------------------------------------------------------------ #
    def validate(self) -> Optional[str]:
        """Reject captures that would bake stale batch data into the plan."""
        if self.error is not None:
            return self.error
        for i, a in enumerate(self.arrays):
            if i not in self.matched:
                return (f"input array {i} (shape {a.shape}, dtype {a.dtype}) was "
                        "never consumed as a graph leaf or patch dependency; a "
                        "derived use would replay stale values")
        return None
