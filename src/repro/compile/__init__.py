"""Capture-and-replay compilation for the ``numpy-compiled`` backend.

One eager step is recorded per ``(model, input signature, mode, parameter
structure)`` key; every later step replays a static, Python-dispatch-free
schedule with pre-planned buffer lifetimes.  See DESIGN.md §15.
"""

from repro.compile.graph import CaptureContext, CaptureError
from repro.compile.plan import CompiledPlan, build_forward_plan
from repro.compile.serialize import (
    PLAN_FORMAT_VERSION,
    deserialize_inference_plan,
    serialize_inference_plan,
)
from repro.compile.step import StepCompiler, StepHandle, backend_compiles

__all__ = [
    "CaptureContext",
    "CaptureError",
    "CompiledPlan",
    "PLAN_FORMAT_VERSION",
    "StepCompiler",
    "StepHandle",
    "backend_compiles",
    "build_forward_plan",
    "deserialize_inference_plan",
    "serialize_inference_plan",
]
