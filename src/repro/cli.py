"""Command-line interface for the Cuttlefish reproduction.

Ten subcommands cover the workflows a downstream user needs without writing
Python:

* ``train``    — train one registered method on a synthetic task and print
  its comparison-table row; optionally save a checkpoint or export a serving
  artifact of the trained model.
* ``compare``  — run several methods on the same task/budget and print the
  paper-style comparison table (Table 1 / 2 / 19 format).
* ``list-methods`` — print every method in the unified registry with its
  one-line description.
* ``profile``  — run Algorithm 2 (the K̂ decision) on a paper-scale model under
  the GPU roofline and print the per-stack speedup table (Figure 4).
* ``rank-trace`` — train briefly while recording per-layer stable ranks and
  print the trajectory table behind Figures 2/3.
* ``export``   — convert a training checkpoint into a versioned serving
  artifact (low-rank factors stay factorized; optionally fuse or densify).
* ``serve``    — boot the micro-batching HTTP inference server on an
  exported artifact (``/predict``, ``/healthz``, ``/metrics``).
* ``bench-serve`` — closed-loop load test of an artifact: dynamic
  micro-batching vs batch-size-1 serving, JSON results.
* ``bench``    — the unified perf-regression harness (``repro.bench``):
  ``bench run`` executes a registered suite with warmup/iters/repeat knobs
  and emits the versioned results contract, ``bench compare`` renders a
  noise-aware base-vs-candidate markdown verdict table (nonzero exit on
  regression), ``bench history`` views the longitudinal JSONL store, and
  ``bench list`` enumerates registered suites.
* ``trace``    — inspect span timelines recorded with ``--trace PATH``
  (available on ``train`` / ``compare`` / ``serve`` / ``bench-serve``):
  ``trace summary`` prints per-phase totals and step coverage, ``trace
  export`` converts between Chrome trace-event JSON and the JSONL event log.

``train`` and ``compare`` accept any method registered with
``repro.train.methods.register_method`` — including ones a downstream user
registers in their own code before calling :func:`main`.

Examples
--------
::

    repro-cuttlefish train --method cuttlefish --epochs 8 --export model.npz
    repro-cuttlefish compare --methods full_rank pufferfish cuttlefish --epochs 8
    repro-cuttlefish export --checkpoint ckpt.npz --model resnet18 --output model.npz
    repro-cuttlefish serve --artifact model.npz --port 8080 --max-batch-size 32
    repro-cuttlefish bench-serve --artifact model.npz --duration 5
    repro-cuttlefish profile --model resnet18 --device v100 --batch-size 1024
    repro-cuttlefish rank-trace --model vgg19 --epochs 6
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

import numpy as np

from repro.core import CuttlefishConfig, RankTracker, profile_layer_stacks
from repro.data import DataLoader, make_vision_task
from repro.models import available_models, build_model
from repro.optim import SGD, build_paper_cifar_schedule
from repro.profiling import get_device
from repro.tensor import available_backends, set_backend
from repro.train.experiments import (
    ExperimentRow,
    ExperimentSpec,
    VisionExperimentConfig,
    format_rows,
    run_experiment,
)
from repro.train.methods import available_methods, method_descriptions
from repro.train.trainer import Trainer
from repro.utils import get_rng, seed_everything


def _check_backend_name(name) -> None:
    """Loud :class:`ValueError` for unknown backend names.

    Most ``--backend`` flags are argparse-validated via ``choices``; paths
    that accept a free-form override (``bench run``) route through this so a
    typo reports the registered names instead of surfacing as a bare
    ``KeyError`` from the backend registry mid-run.
    """
    if name is not None and name not in available_backends():
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(available_backends())}"
        )


# --------------------------------------------------------------------------- #
# Argument parsing
# --------------------------------------------------------------------------- #
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cuttlefish",
        description="Cuttlefish (MLSys 2023) reproduction — automated low-rank training.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_budget_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--task", default="cifar10_small",
                       help="synthetic task name (see repro.data.VISION_TASKS)")
        p.add_argument("--model", default="resnet18", choices=available_models())
        p.add_argument("--epochs", type=int, default=10)
        p.add_argument("--batch-size", type=int, default=32)
        p.add_argument("--width-mult", type=float, default=0.125,
                       help="channel-width multiplier for the reduced-scale model")
        p.add_argument("--lr", type=float, default=0.3)
        p.add_argument("--weight-decay", type=float, default=5e-3)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--max-batches", type=int, default=None,
                       help="cap the number of batches per epoch (smoke tests)")
        p.add_argument("--backend", default="numpy", choices=available_backends(),
                       help="tensor execution backend (numpy-fast pools buffers "
                            "and fuses hot-path kernels; identical results)")
        p.add_argument("--loader", default="auto", choices=["auto", "legacy", "pipeline"],
                       help="input pipeline: 'legacy' per-sample loader, the "
                            "vectorized streaming 'pipeline' (counter-based "
                            "augmentation RNG), or 'auto' (pipeline when "
                            "--prefetch > 0, legacy otherwise)")
        p.add_argument("--prefetch", type=int, default=0, metavar="DEPTH",
                       help="prefetch depth: batches materialised ahead of the "
                            "training step on producer threads (0 = synchronous)")
        p.add_argument("--loader-workers", type=int, default=1, metavar="N",
                       help="producer threads for the prefetching loader "
                            "(results are bit-identical at any worker count)")
        p.add_argument("--world-size", type=int, default=1, metavar="N",
                       help="data-parallel replicas: N threaded workers train "
                            "on ShardedSampler shards with a deterministic "
                            "gradient all-reduce and Goyal lr scaling "
                            "(N > 1 implies --loader pipeline; results are "
                            "bit-stable across reruns and thread schedules)")
        p.add_argument("--dp-mode", default="thread", choices=("thread", "process"),
                       help="data-parallel drive mode: 'thread' (workers "
                            "overlap only inside GIL-releasing BLAS kernels) "
                            "or 'process' (forked workers with shared-memory "
                            "gradient exchange — true multi-core scaling, "
                            "bit-identical to thread mode)")
        p.add_argument("--no-lr-scaling", action="store_true",
                       help="disable the Goyal world_size x lr scaling rule "
                            "under --world-size > 1")
        p.add_argument("--trace", default=None, metavar="PATH",
                       help="record a span timeline of the run: Chrome "
                            "trace-event JSON (Perfetto-loadable), or a JSONL "
                            "structured event log when PATH ends in .jsonl")
        p.add_argument("--json", action="store_true", help="emit JSON instead of a table")

    methods = available_methods()

    train = sub.add_parser("train", help="train one method and print its result row")
    add_budget_args(train)
    train.add_argument("--method", default="cuttlefish", choices=methods)
    train.add_argument("--save-checkpoint", default=None, metavar="PATH",
                       help="write a training checkpoint of the trained model")
    train.add_argument("--export", default=None, metavar="PATH",
                       help="export the trained model as a serving artifact")

    compare = sub.add_parser("compare", help="run several methods on the same budget")
    add_budget_args(compare)
    compare.add_argument("--methods", nargs="+", default=["full_rank", "cuttlefish"],
                         choices=methods)

    list_methods = sub.add_parser("list-methods",
                                  help="list every registered training method")
    list_methods.add_argument("--json", action="store_true")

    profile = sub.add_parser("profile", help="Algorithm 2: per-stack speedup table (Figure 4)")
    profile.add_argument("--model", default="resnet18", choices=available_models())
    profile.add_argument("--num-classes", type=int, default=10)
    profile.add_argument("--device", default="v100", help="v100 | t4 | a100 | cpu")
    profile.add_argument("--batch-size", type=int, default=1024,
                         help="batch size at which the roofline is evaluated")
    profile.add_argument("--rank-ratio", type=float, default=0.25, help="probe rank ratio ρ̄")
    profile.add_argument("--speedup-threshold", type=float, default=1.5, help="υ")
    profile.add_argument("--image-size", type=int, default=32)
    profile.add_argument("--json", action="store_true")

    export = sub.add_parser("export", help="convert a checkpoint into a serving artifact")
    export.add_argument("--checkpoint", required=True, help="checkpoint written by save_checkpoint")
    export.add_argument("--output", required=True, help="artifact destination (.npz)")
    export.add_argument("--model", default="resnet18", choices=available_models())
    export.add_argument("--num-classes", type=int, default=10)
    export.add_argument("--width-mult", type=float, default=0.125)
    export.add_argument("--input-shape", type=int, nargs="+", default=None,
                        help="per-sample input shape recorded in the manifest "
                             "(default: the shape stored in the checkpoint, else 3 32 32)")
    export.add_argument("--fuse", action="store_true",
                        help="fold Linear→ReLU/GELU pairs into fused kernels before export")
    export.add_argument("--dense", action="store_true",
                        help="merge low-rank factors into dense layers before export "
                             "(the baseline the factorized artifact is compared against)")
    export.add_argument("--seed", type=int, default=0)

    serve = sub.add_parser("serve", help="serve an artifact over HTTP with micro-batching")
    serve.add_argument("--artifact", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--backend", default=None, choices=available_backends(),
                       help="tensor backend for inference (default: current)")
    serve.add_argument("--max-batch-size", type=int, default=32)
    serve.add_argument("--max-wait-ms", type=float, default=2.0)
    serve.add_argument("--max-queue", type=int, default=256)
    serve.add_argument("--workers", type=int, default=1,
                       help="predictor-pool size (replicated inference workers)")
    serve.add_argument("--mode", default="thread", choices=["thread", "process", "auto"],
                       help="pool execution mode; 'auto' picks process when "
                            "fork is available, thread otherwise")
    serve.add_argument("--admission", default="reject",
                       choices=["reject", "block", "priority"],
                       help="admission policy when the request queue is full")
    serve.add_argument("--cache-size", type=int, default=0,
                       help="response-cache capacity in batches (0 disables)")
    serve.add_argument("--slo-p99-ms", type=float, default=None,
                       help="enable the SLO controller with this p99 latency "
                            "target; it tunes max_batch_size/max_wait_ms live")
    serve.add_argument("--trace", default=None, metavar="PATH",
                       help="record request/batch/inference spans; the trace "
                            "is written when the server shuts down")

    bench_serve = sub.add_parser("bench-serve",
                                 help="closed-loop load test: micro-batching vs batch-1")
    bench_serve.add_argument("--artifact", required=True)
    bench_serve.add_argument("--duration", type=float, default=3.0, help="seconds per config")
    bench_serve.add_argument("--concurrency", type=int, default=32)
    bench_serve.add_argument("--max-batch-size", type=int, default=32)
    bench_serve.add_argument("--max-wait-ms", type=float, default=2.0)
    bench_serve.add_argument("--transports", nargs="+", default=["engine", "http"],
                             choices=["engine", "http"])
    bench_serve.add_argument("--workers", type=int, default=1,
                             help="predictor-pool size for the batched policy")
    bench_serve.add_argument("--mode", default="thread",
                             choices=["thread", "process", "auto"],
                             help="pool execution mode for the batched policy")
    bench_serve.add_argument("--backend", default=None, choices=available_backends())
    bench_serve.add_argument("--trace", default=None, metavar="PATH",
                             help="record serve-path spans across the load test")

    bench = sub.add_parser("bench",
                           help="perf-regression harness: run/compare/history/list")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    bench_run = bench_sub.add_parser(
        "run", help="run one registered suite and emit the results contract")
    bench_run.add_argument("--suite", required=True,
                           help="registered suite name (see `bench list`)")
    bench_run.add_argument("--tiny", action="store_true",
                           help="CI smoke budget per measurement")
    bench_run.add_argument("--warmup", type=int, default=1,
                           help="discarded warmup executions of the suite body")
    bench_run.add_argument("--repeat", type=int, default=3,
                           help="measured repeats feeding the median/IQR noise model")
    bench_run.add_argument("--iters", type=int, default=None,
                           help="timed inner-loop size (suite-specific; overrides "
                                "the tiny/full default)")
    bench_run.add_argument("--backend", default=None,
                           help="tensor backend override for backend-aware suites")
    bench_run.add_argument("--out", default=None, metavar="DIR",
                           help="output directory (default benchmarks/output)")
    bench_run.add_argument("--json-path", default=None,
                           help="results-contract destination "
                                "(default <out>/<suite>.bench.json)")
    bench_run.add_argument("--history-path", default=None,
                           help="longitudinal JSONL store "
                                "(default <out>/history.jsonl)")
    bench_run.add_argument("--no-history", action="store_true",
                           help="skip appending to the longitudinal store")
    bench_run.add_argument("--json", action="store_true",
                           help="print the results document to stdout instead "
                                "of the summary table")

    bench_compare = bench_sub.add_parser(
        "compare", help="noise-aware verdict table for two results documents")
    bench_compare.add_argument("base", help="baseline results JSON")
    bench_compare.add_argument("candidate", help="candidate results JSON")
    bench_compare.add_argument("--noise-threshold", type=float, default=0.1,
                               metavar="FRAC",
                               help="relative-change floor below which a delta "
                                    "is within-noise (default 0.1 = 10%%)")
    bench_compare.add_argument("--no-noise-aware", action="store_true",
                               help="ignore measured per-metric IQR; use only "
                                    "--noise-threshold")
    bench_compare.add_argument("--json", action="store_true",
                               help="emit the verdict report as JSON")

    bench_history = bench_sub.add_parser(
        "history", help="view the longitudinal benchmark store")
    bench_history.add_argument("--store", default=None,
                               help="JSONL store path (default benchmarks/output/"
                                    "history.jsonl)")
    bench_history.add_argument("--suite", default=None, help="filter by suite")
    bench_history.add_argument("--metric", default=None, help="filter by metric")
    bench_history.add_argument("--last", type=int, default=None, metavar="N",
                               help="show only the newest N matching entries")
    bench_history.add_argument("--json", action="store_true")

    bench_list = bench_sub.add_parser("list", help="list registered suites")
    bench_list.add_argument("--json", action="store_true")

    trace_cmd = sub.add_parser("trace",
                               help="inspect or convert recorded span timelines")
    trace_sub = trace_cmd.add_subparsers(dest="trace_command", required=True)
    trace_summary = trace_sub.add_parser(
        "summary", help="per-phase totals, lane census, and step coverage")
    trace_summary.add_argument("path", help="trace written by --trace (either format)")
    trace_summary.add_argument("--json", action="store_true")
    trace_export = trace_sub.add_parser(
        "export", help="convert between Chrome JSON and the JSONL event log")
    trace_export.add_argument("src", help="source trace (format auto-detected)")
    trace_export.add_argument("dst",
                              help="destination: .jsonl gets the event log, "
                                   "anything else Chrome trace-event JSON")

    trace = sub.add_parser("rank-trace", help="per-layer stable-rank trajectories (Figure 2/3)")
    trace.add_argument("--task", default="cifar10_small")
    trace.add_argument("--model", default="resnet18", choices=available_models())
    trace.add_argument("--epochs", type=int, default=6)
    trace.add_argument("--batch-size", type=int, default=32)
    trace.add_argument("--width-mult", type=float, default=0.125)
    trace.add_argument("--lr", type=float, default=0.3)
    trace.add_argument("--weight-decay", type=float, default=5e-3)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--json", action="store_true")
    return parser


def _experiment_config(args: argparse.Namespace) -> VisionExperimentConfig:
    return VisionExperimentConfig(
        task=args.task,
        model=args.model,
        width_mult=args.width_mult,
        epochs=args.epochs,
        batch_size=args.batch_size,
        peak_lr=args.lr,
        weight_decay=args.weight_decay,
        seed=args.seed,
        max_batches_per_epoch=args.max_batches,
        loader=args.loader,
        prefetch_depth=args.prefetch,
        loader_workers=args.loader_workers,
        world_size=args.world_size,
        dp_mode=args.dp_mode,
        dp_lr_scaling=not args.no_lr_scaling,
    )


# --------------------------------------------------------------------------- #
# Subcommand implementations
# --------------------------------------------------------------------------- #
def _start_trace(args: argparse.Namespace, label: str) -> bool:
    """Begin a span-recording session when the command got ``--trace PATH``."""
    if getattr(args, "trace", None):
        from repro.telemetry import tracing

        tracing.enable(label)
        return True
    return False


def _finish_trace(args: argparse.Namespace, out) -> None:
    """Stop recording and write the trace file named by ``--trace``."""
    from repro.telemetry import tracing

    session = tracing.disable()
    if session is not None:
        spans = tracing.write_trace(args.trace, session)
        out.write(f"trace: {spans} spans written to {args.trace}\n")


def _emit_rows(rows: List[ExperimentRow], as_json: bool, stream) -> None:
    if as_json:
        json.dump([row.as_dict() for row in rows], stream, indent=2, default=float)
        stream.write("\n")
    else:
        stream.write(format_rows(rows) + "\n")


def _model_spec(args: argparse.Namespace, num_classes: int) -> dict:
    """JSON-serialisable build_model spec for the trained architecture."""
    kwargs = {"num_classes": num_classes, "width_mult": args.width_mult}
    if args.model in ("resnet18", "resnet50", "wide_resnet50_2"):
        kwargs["small_input"] = True
    return {"name": args.model, "kwargs": kwargs}


def cmd_train(args: argparse.Namespace, stream=sys.stdout) -> int:
    set_backend(args.backend)
    config = _experiment_config(args)
    spec = ExperimentSpec(method=args.method, config=config)
    wants_model = args.save_checkpoint or args.export
    uses_pipeline = config.uses_pipeline_loader()
    traced = _start_trace(args, "trainer")
    try:
        if wants_model or uses_pipeline:
            row, context = run_experiment(spec, return_context=True)
        else:
            row = run_experiment(spec)
    finally:
        if traced:
            # With --json the trace line would corrupt the stdout payload.
            _finish_trace(args, sys.stderr if args.json else stream)
    _emit_rows([row], args.json, stream)
    if uses_pipeline and context.trainer is not None:
        stats = context.trainer.pipeline_stats
        # With --json the stats line would corrupt the machine-readable
        # stdout payload — send it to stderr there instead.
        out = sys.stderr if args.json else stream
        out.write(
            f"pipeline: {stats.describe()} "
            f"(loader=pipeline prefetch={config.prefetch_depth} "
            f"workers={config.loader_workers} world_size={config.world_size} "
            f"dp_mode={config.dp_mode})\n")
        wall = stats.extra.get("wall_seconds", 0.0)
        if config.world_size > 1 and wall > 0:
            # describe()'s samples/sec divides by summed per-replica thread
            # time; replicas overlap, so wall-clock throughput is the honest
            # data-parallel number.
            out.write(f"data-parallel throughput: {stats.samples / wall:.1f} "
                      f"samples/s over {wall:.3f}s wall\n")
        last = context.trainer.last_epoch_pipeline_stats
        if config.world_size > 1 and last is not None:
            per_replica = " ".join(
                f"r{rank}={last.extra.get(f'replica{rank}_stall_seconds', 0.0):.3f}s"
                f"/{last.extra.get(f'replica{rank}_compute_seconds', 0.0):.3f}s"
                for rank in range(config.world_size))
            out.write(f"replicas (stall/compute, last epoch): {per_replica}\n")
    if args.save_checkpoint:
        from repro.utils import save_checkpoint

        save_checkpoint(
            args.save_checkpoint, context.model,
            metadata={
                "method": args.method,
                "val_accuracy": row.val_accuracy,
                "model_spec": _model_spec(args, context.task_spec.num_classes),
                "input_shape": [3, context.task_spec.image_size, context.task_spec.image_size],
            })
        stream.write(f"checkpoint written to {args.save_checkpoint}\n")
    if args.export:
        from repro.serve import export_artifact

        shape = (3, context.task_spec.image_size, context.task_spec.image_size)
        example = get_rng(offset=99).standard_normal((8,) + shape).astype(np.float32)
        manifest = export_artifact(
            args.export, context.model,
            model_spec=_model_spec(args, context.task_spec.num_classes),
            input_shape=shape,
            metadata={"method": args.method, "val_accuracy": row.val_accuracy},
            example_batch=example,
        )
        stream.write(f"artifact written to {args.export} "
                     f"(batch_invariant={manifest.get('batch_invariant')})\n")
    return 0


def cmd_compare(args: argparse.Namespace, stream=sys.stdout) -> int:
    set_backend(args.backend)
    traced = _start_trace(args, "trainer")
    try:
        rows = [run_experiment(ExperimentSpec(method=method, config=_experiment_config(args)))
                for method in args.methods]
    finally:
        if traced:
            _finish_trace(args, sys.stderr if args.json else stream)
    _emit_rows(rows, args.json, stream)
    return 0


def cmd_list_methods(args: argparse.Namespace, stream=sys.stdout) -> int:
    descriptions = method_descriptions()
    if args.json:
        json.dump(descriptions, stream, indent=2)
        stream.write("\n")
        return 0
    width = max(len(name) for name in descriptions)
    for name, description in descriptions.items():
        stream.write(f"{name:<{width}}  {description}\n")
    return 0


def cmd_profile(args: argparse.Namespace, stream=sys.stdout) -> int:
    model = build_model(args.model, num_classes=args.num_classes, rng=get_rng(offset=1))
    if not hasattr(model, "layer_stack_paths"):
        stream.write(f"model {args.model!r} does not define layer stacks; nothing to profile\n")
        return 1
    probe = get_rng(offset=2).standard_normal((2, 3, args.image_size, args.image_size)).astype(np.float32)
    labels = np.zeros(len(probe), dtype=np.int64)
    result = profile_layer_stacks(
        model, model.layer_stack_paths(), (probe, labels),
        rank_ratio=args.rank_ratio,
        speedup_threshold=args.speedup_threshold,
        mode="roofline",
        device=get_device(args.device),
        batch_scale=args.batch_size / len(probe),
    )
    if args.json:
        payload = {
            "k_hat": result.k_hat,
            "factorize_stacks": result.factorize_stacks,
            "skip_stacks": result.skip_stacks,
            "speedups": result.speedup_table(),
        }
        json.dump(payload, stream, indent=2, default=float)
        stream.write("\n")
        return 0
    stream.write(f"{'stack':>12}  {'full-rank':>12}  {'factorized':>12}  {'speedup':>8}  decision\n")
    for stack in result.stack_profiles:
        decision = "factorize" if stack.stack_name in result.factorize_stacks else "keep full-rank"
        stream.write(f"{stack.stack_name:>12}  {1e3 * stack.full_rank_time:12.4f}  "
                     f"{1e3 * stack.factorized_time:12.4f}  {stack.speedup:8.2f}  {decision}\n")
    stream.write(f"K̂ = {result.k_hat}\n")
    return 0


def cmd_rank_trace(args: argparse.Namespace, stream=sys.stdout) -> int:
    seed_everything(args.seed)
    train_ds, _, spec = make_vision_task(args.task)
    loader = DataLoader(train_ds, batch_size=args.batch_size, shuffle=True)
    model = build_model(args.model, num_classes=spec.num_classes,
                        width_mult=args.width_mult, rng=get_rng(offset=args.seed + 1))
    optimizer = SGD(model.parameters(), lr=args.lr, momentum=0.9, weight_decay=args.weight_decay)
    scheduler = build_paper_cifar_schedule(optimizer, args.epochs, args.lr,
                                           start_lr=args.lr / 8, warmup_epochs=2)
    tracker = RankTracker(model, model.factorization_candidates())
    trainer = Trainer(model, optimizer, loader, scheduler=scheduler)
    for _ in range(args.epochs):
        trainer.train_epoch()
        tracker.update(model)
        scheduler.step()

    table = tracker.rank_ratio_table()
    if args.json:
        json.dump(table, stream, indent=2, default=float)
        stream.write("\n")
        return 0
    epochs = range(1, tracker.epochs_recorded + 1)
    stream.write(f"{'layer':>28}  " + "  ".join(f"ep{e:>2d}" for e in epochs) + "\n")
    for path, ratios in table.items():
        stream.write(f"{path:>28}  " + "  ".join(f"{r:4.2f}" for r in ratios) + "\n")
    return 0


def cmd_export(args: argparse.Namespace, stream=sys.stdout) -> int:
    from repro import nn
    from repro.serve import export_artifact
    from repro.utils import load_checkpoint, read_checkpoint_meta

    seed_everything(args.seed)
    # Checkpoints written by `train --save-checkpoint` carry their builder
    # spec; explicit CLI flags act as a fallback for hand-rolled checkpoints.
    stored = read_checkpoint_meta(args.checkpoint).get("metadata", {})
    spec = stored.get("model_spec") or _model_spec(args, args.num_classes)
    name, kwargs = spec["name"], spec["kwargs"]
    model = build_model(name, rng=get_rng(offset=args.seed + 1), **kwargs)
    load_checkpoint(args.checkpoint, model)
    if args.dense:
        from repro.core import merge_factorized

        merged = merge_factorized(model)
        stream.write(f"merged {merged} low-rank layers into dense weights\n")
    if args.fuse:
        fused = nn.fuse_linear_activations(model)
        stream.write(f"fused {fused} Linear→activation pairs\n")
    if args.input_shape is not None:
        shape = tuple(args.input_shape)
    else:
        shape = tuple(stored.get("input_shape") or (3, 32, 32))
    example = get_rng(offset=77).standard_normal((8,) + shape).astype(np.float32)
    manifest = export_artifact(
        args.output, model,
        model_spec={"name": name, "kwargs": kwargs},
        input_shape=shape,
        metadata={"checkpoint": args.checkpoint},
        example_batch=example,
    )
    stream.write(f"artifact written to {args.output}: {manifest['num_parameters']} params, "
                 f"ranks={len(manifest['ranks'])} factorized layers, "
                 f"batch_invariant={manifest.get('batch_invariant')}\n")
    return 0


def _resolve_pool_mode(mode: str) -> str:
    """Map the CLI's thread|process|auto to a concrete pool mode."""
    if mode != "auto":
        return mode
    from repro.distributed.process import fork_available

    return "process" if fork_available() else "thread"


def cmd_serve(args: argparse.Namespace, stream=sys.stdout) -> int:
    from repro.serve import AdmissionPolicy, BatchingPolicy, ModelServer

    policy = BatchingPolicy(max_batch_size=args.max_batch_size,
                            max_wait_ms=args.max_wait_ms, max_queue=args.max_queue)
    mode = _resolve_pool_mode(args.mode)
    traced = _start_trace(args, "server")
    server = ModelServer(args.artifact, policy=policy, host=args.host, port=args.port,
                         backend=args.backend,
                         workers=args.workers, mode=mode,
                         admission=AdmissionPolicy(kind=args.admission),
                         cache_size=args.cache_size, slo=args.slo_p99_ms)
    slo_note = f", slo_p99_ms={args.slo_p99_ms}" if args.slo_p99_ms else ""
    stream.write(f"serving {server.model_name} on {server.url} "
                 f"(max_batch_size={args.max_batch_size}, max_wait_ms={args.max_wait_ms}, "
                 f"workers={args.workers}, mode={mode}, "
                 f"admission={args.admission}{slo_note})\n")
    stream.flush()
    try:
        server.serve_forever()
    finally:
        if traced:
            _finish_trace(args, stream)
    return 0


def cmd_bench_serve(args: argparse.Namespace, stream=sys.stdout) -> int:
    from repro.serve import bench_artifact

    traced = _start_trace(args, "bench-serve")
    try:
        results = bench_artifact(
            args.artifact,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            duration_s=args.duration,
            concurrency=args.concurrency,
            transports=args.transports,
            backend=args.backend,
            workers=args.workers,
            mode=_resolve_pool_mode(args.mode),
        )
    finally:
        if traced:
            # Results are a JSON document on stdout; keep it parseable.
            _finish_trace(args, sys.stderr)
    json.dump(results, stream, indent=2, default=float)
    stream.write("\n")
    return 0


def cmd_bench(args: argparse.Namespace, stream=sys.stdout) -> int:
    import os

    from repro import bench

    if args.bench_command == "list":
        descriptions = bench.suite_descriptions()
        if args.json:
            payload = {}
            for name in descriptions:
                suite = bench.get_suite(name)
                payload[name] = {
                    "description": suite.description,
                    "metrics": [{"name": m.name, "unit": m.unit,
                                 "higher_is_better": m.higher_is_better}
                                for m in suite.metrics],
                    "default_backend": suite.default_backend,
                    "tags": list(suite.tags),
                }
            json.dump(payload, stream, indent=2)
            stream.write("\n")
            return 0
        width = max(len(name) for name in descriptions)
        for name, description in descriptions.items():
            suite = bench.get_suite(name)
            metrics = ", ".join(m.name for m in suite.metrics)
            stream.write(f"{name:<{width}}  {description}\n")
            stream.write(f"{'':<{width}}    metrics: {metrics}\n")
        return 0

    if args.bench_command == "run":
        out = args.out or os.path.join("benchmarks", "output")
        json_path = args.json_path or os.path.join(out, f"{args.suite}.bench.json")
        history_path = args.history_path or os.path.join(out, "history.jsonl")
        try:
            _check_backend_name(args.backend)
            config = bench.RunConfig(tiny=args.tiny, warmup=args.warmup,
                                     repeat=args.repeat, iters=args.iters,
                                     backend=args.backend)
        except ValueError as error:
            stream.write(f"error: {error}\n")
            return 2
        try:
            bench.get_suite(args.suite)
        except KeyError as error:
            stream.write(f"error: {error.args[0]}\n")
            return 2

        def progress(stage, index, total):
            sys.stderr.write(f"[bench] {args.suite}: {stage} {index + 1}/{total}\n")

        result = bench.run_suite(args.suite, config, progress=progress)
        bench.write_result(json_path, result)
        if args.json:
            json.dump(result, stream, indent=2, default=float)
            stream.write("\n")
        else:
            stream.write(bench.format_result_table(result) + "\n")
            stream.write(f"wrote {json_path}\n")
        if not args.no_history:
            written = bench.append_result(history_path, result)
            target = sys.stderr if args.json else stream
            target.write(f"appended {written} metrics to {history_path}\n")
        return 0

    if args.bench_command == "compare":
        try:
            base = bench.load_result(args.base)
            candidate = bench.load_result(args.candidate)
            report = bench.compare_results(
                base, candidate,
                noise_threshold=args.noise_threshold,
                noise_aware=not args.no_noise_aware)
        except (bench.ContractError, bench.CompareError, ValueError) as error:
            stream.write(f"error: {error}\n")
            return 2
        if args.json:
            json.dump(report.as_dict(), stream, indent=2, default=float)
            stream.write("\n")
        else:
            stream.write(bench.format_markdown(report) + "\n")
        return report.exit_code

    if args.bench_command == "history":
        store = args.store or os.path.join("benchmarks", "output", "history.jsonl")
        try:
            entries, skipped = bench.read_history(
                store, suite=args.suite, metric=args.metric, last=args.last)
        except ValueError as error:
            stream.write(f"error: {error}\n")
            return 2
        if args.json:
            json.dump({"entries": entries, "skipped": skipped}, stream,
                      indent=2, default=float)
            stream.write("\n")
        else:
            stream.write(bench.format_history(entries, skipped) + "\n")
        return 0

    raise AssertionError(f"unhandled bench subcommand {args.bench_command!r}")


def cmd_trace(args: argparse.Namespace, stream=sys.stdout) -> int:
    from repro.telemetry import tracing

    if args.trace_command == "summary":
        try:
            events, meta = tracing.load_trace(args.path)
        except (OSError, ValueError) as error:
            stream.write(f"error: {error}\n")
            return 2
        summary = tracing.summarize_trace(events)
        if args.json:
            json.dump({"meta": meta, "summary": summary}, stream,
                      indent=2, default=float)
            stream.write("\n")
            return 0
        stream.write(f"trace {args.path} "
                     f"(session={meta.get('session', '?')}, "
                     f"schema_version={meta.get('schema_version', '?')})\n")
        stream.write(tracing.format_summary(summary) + "\n")
        return 0

    if args.trace_command == "export":
        try:
            written = tracing.convert_trace(args.src, args.dst)
        except (OSError, ValueError) as error:
            stream.write(f"error: {error}\n")
            return 2
        stream.write(f"wrote {written} events to {args.dst}\n")
        return 0

    raise AssertionError(f"unhandled trace subcommand {args.trace_command!r}")


COMMANDS = {
    "train": cmd_train,
    "compare": cmd_compare,
    "list-methods": cmd_list_methods,
    "profile": cmd_profile,
    "rank-trace": cmd_rank_trace,
    "export": cmd_export,
    "serve": cmd_serve,
    "bench-serve": cmd_bench_serve,
    "bench": cmd_bench,
    "trace": cmd_trace,
}


def main(argv: Optional[List[str]] = None, stream=sys.stdout) -> int:
    """Entry point used by the ``repro-cuttlefish`` console script and tests."""
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args, stream=stream)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
