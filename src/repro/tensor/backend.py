"""Execution backends for the autograd engine.

The engine in :mod:`repro.tensor.tensor` is *policy free*: every op computes
its forward result and its input gradients with plain numpy expressions, but
all memory-strategy decisions — where gradient buffers come from, whether
intermediate gradients are retained after backward, whether the hot-path
kernels run fused or as seed-faithful op chains — are delegated to the active
:class:`Backend`.

Backends are registered exactly like models and training methods::

    @register_backend("my-backend")
    class MyBackend(Backend):
        ...

    set_backend("my-backend")          # or use_backend("...") as a context

Two backends ship with the library:

``numpy`` (default)
    The reference execution strategy.  Every op allocates fresh buffers and
    the hot paths run as the same op chains the original engine recorded, so
    results are bit-for-bit identical to the historical implementation.

``numpy-fast``
    The same arithmetic, scheduled differently: gradient buffers are drawn
    from a shape-keyed arena and recycled as soon as the backward pass has
    consumed them, accumulation happens in place, im2col scratch is pooled,
    and the hot-path kernels (``linear_act``, ``softmax_cross_entropy``,
    fused attention weights) run as single fused graph nodes.  Every fused
    kernel replicates the exact float-op sequence of the unfused chain, so
    losses and gradients stay bit-for-bit identical to the ``numpy`` backend;
    only allocation behaviour differs.  Because buffers are recycled,
    intermediate (non-leaf) gradients are *not* retained after ``backward``
    and a graph must not be backpropagated twice on this backend.

Both backends keep per-op counters (call counts and, for GEMM-bearing ops,
exact FLOPs) that :mod:`repro.profiling` reads instead of re-deriving costs
from traced shapes.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple, Type, Union

import numpy as np

DEFAULT_DTYPE = np.float32

# Maximum pooled buffers per (shape, dtype) bucket; anything beyond is left
# to the garbage collector so pathological shape churn cannot hoard memory.
_ARENA_BUCKET_CAP = 16


@dataclass(frozen=True)
class OpCount:
    """Read-only snapshot of one op's execution counters."""

    calls: int
    flops: float


class Backend:
    """Execution-strategy interface the engine dispatches through.

    Subclasses toggle class-level policy flags and override the buffer
    methods; the arithmetic itself lives in the ops and is shared by all
    backends.
    """

    #: Registry name, filled in by :func:`register_backend`.
    name: str = "base"
    #: Run hot-path kernels (linear, softmax cross-entropy, attention
    #: weights) as single fused graph nodes instead of seed-style op chains.
    fuse_kernels: bool = False
    #: Draw gradient/scratch buffers from the arena and recycle them.
    pool_buffers: bool = False
    #: Use the cache-optimised im2col/col2im gather strategies (strided
    #: window views, contiguous-first scatter).  Bit-identical values; the
    #: reference backend keeps the original loop-based gathers.
    fast_gather: bool = False
    #: Keep non-leaf gradients alive after ``backward`` (the reference
    #: behaviour).  Pooling backends drop them so the buffers can be reused.
    retain_intermediate_grads: bool = True

    def __init__(self) -> None:
        self._counts: Dict[str, List[float]] = {}

    # ------------------------------------------------------------------ #
    # Per-op counters
    # ------------------------------------------------------------------ #
    def record(self, name: str) -> None:
        """Count one execution of op ``name``."""
        entry = self._counts.get(name)
        if entry is None:
            self._counts[name] = entry = [0, 0.0]
        entry[0] += 1

    def record_bulk(self, counts: Dict[str, int]) -> None:
        """Count ``counts[name]`` executions of each op in one call.

        Used by compiled-plan replay, whose op sequence is static: one bulk
        update per replay keeps the counters identical to per-op recording
        without per-step dictionary traffic.
        """
        for name, calls in counts.items():
            entry = self._counts.get(name)
            if entry is None:
                self._counts[name] = entry = [0, 0.0]
            entry[0] += calls

    def add_flops(self, name: str, flops: float) -> None:
        """Attribute ``flops`` floating-point operations to op ``name``."""
        entry = self._counts.get(name)
        if entry is None:
            self._counts[name] = entry = [0, 0.0]
        entry[1] += flops

    def counters(self) -> Dict[str, OpCount]:
        """Snapshot of every op executed since the last reset."""
        return {name: OpCount(int(c[0]), float(c[1])) for name, c in self._counts.items()}

    def reset_counters(self) -> None:
        self._counts.clear()

    # ------------------------------------------------------------------ #
    # Buffer management
    # ------------------------------------------------------------------ #
    def take(self, shape: Tuple[int, ...], dtype=DEFAULT_DTYPE) -> np.ndarray:
        """An uninitialised buffer of the requested shape."""
        return np.empty(shape, dtype=dtype)

    def take_zeros(self, shape: Tuple[int, ...], dtype=DEFAULT_DTYPE) -> np.ndarray:
        """A zero-filled buffer of the requested shape."""
        return np.zeros(shape, dtype=dtype)

    def take_like(self, prototype: np.ndarray) -> np.ndarray:
        """An uninitialised buffer with ``prototype``'s shape *and layout*.

        float32 reduction order — hence bitwise results — depends on memory
        layout, so buffers standing in for ``zeros_like``/elementwise results
        must reproduce the prototype's (possibly permuted) strides.
        """
        return np.empty_like(prototype, dtype=DEFAULT_DTYPE)

    def give(self, array: Optional[np.ndarray]) -> None:
        """Return a buffer obtained from :meth:`take` to the allocator."""

    # ------------------------------------------------------------------ #
    # Gradient accumulation
    # ------------------------------------------------------------------ #
    def accumulate(self, tensor, grad: np.ndarray) -> None:
        """Add ``grad`` into ``tensor.grad``, allocating the buffer if needed.

        Mirrors the original ``Tensor._accumulate`` float-op sequence exactly
        (zero-init then ``+=``) so gradients are bit-identical to the seed.
        """
        if not tensor.requires_grad:
            return
        if tensor.grad is None:
            tensor.grad = np.zeros_like(tensor.data, dtype=DEFAULT_DTYPE)
        tensor.grad += grad.astype(DEFAULT_DTYPE, copy=False)

    def release_grad(self, tensor) -> None:
        """Drop ``tensor.grad``, recycling the buffer when pooling."""
        tensor.grad = None


@dataclass(frozen=True)
class _BackendInfo:
    cls: Type[Backend]
    description: str


_BACKENDS: Dict[str, _BackendInfo] = {}
_INSTANCES: Dict[str, Backend] = {}


def register_backend(name: str, description: str = ""):
    """Class decorator registering a :class:`Backend` under ``name``."""

    def decorator(cls: Type[Backend]) -> Type[Backend]:
        if not (isinstance(cls, type) and issubclass(cls, Backend)):
            raise TypeError(f"@register_backend target must subclass Backend, got {cls!r}")
        if name in _BACKENDS:
            raise ValueError(f"backend {name!r} is already registered")
        cls.name = name
        doc_lines = (cls.__doc__ or "").strip().splitlines()
        _BACKENDS[name] = _BackendInfo(cls, description or (doc_lines[0] if doc_lines else ""))
        return cls

    return decorator


def available_backends() -> List[str]:
    """Sorted names of every registered backend."""
    return sorted(_BACKENDS)


def backend_descriptions() -> Dict[str, str]:
    return {name: info.description for name, info in sorted(_BACKENDS.items())}


def _instance(name: str) -> Backend:
    if name not in _BACKENDS:
        raise KeyError(f"unknown backend {name!r}; available: {available_backends()}")
    if name not in _INSTANCES:
        _INSTANCES[name] = _BACKENDS[name].cls()
    return _INSTANCES[name]


def get_backend() -> Backend:
    """The backend every tensor op currently dispatches through."""
    return _active


def set_backend(backend: Union[str, Backend]) -> Backend:
    """Install ``backend`` (a registered name or an instance) as active."""
    global _active
    if isinstance(backend, str):
        backend = _instance(backend)
    elif not isinstance(backend, Backend):
        raise TypeError(f"set_backend expects a name or Backend instance, got {type(backend)!r}")
    _active = backend
    return backend


@contextlib.contextmanager
def use_backend(backend: Union[str, Backend]) -> Iterator[Backend]:
    """Temporarily switch the active backend (restores the previous one)."""
    previous = _active
    installed = set_backend(backend)
    try:
        yield installed
    finally:
        set_backend(previous)


# --------------------------------------------------------------------------- #
# Built-in backends
# --------------------------------------------------------------------------- #
@register_backend("numpy", "reference strategy: fresh buffers, unfused op chains")
class NumpyBackend(Backend):
    """Seed-faithful execution: fresh allocations, unfused hot paths."""


@register_backend("numpy-fast", "arena-pooled buffers, in-place accumulation, fused hot-path kernels")
class NumpyFastBackend(Backend):
    """Arena-allocated gradients, in-place accumulation and fused kernels.

    Bit-identical arithmetic to the ``numpy`` backend; only allocation and
    graph shape differ.  Intermediate gradients are recycled during
    ``backward`` and a graph must not be backpropagated twice.
    """

    fuse_kernels = True
    pool_buffers = True
    fast_gather = True
    retain_intermediate_grads = False

    def __init__(self) -> None:
        super().__init__()
        # Buckets are keyed by (shape, dtype, strides): memory *layout* is
        # part of the contract.  ``zeros_like`` in the reference accumulate
        # preserves the prototype's (possibly permuted) layout, and float32
        # reduction order — hence bitwise results — depends on that layout,
        # so recycled gradient buffers must reproduce it exactly.
        self._arena: Dict[Tuple, List[np.ndarray]] = {}
        # Optional shared-segment backing (a repro.utils.shm.ShmArena):
        # pool misses draw from it so the buffers this backend hands out are
        # visible across fork boundaries.  Best-effort — when the segment is
        # full (alloc returns None) allocation falls back to private heap.
        self._shared_source = None

    def set_shared_source(self, source) -> None:
        """Back pool misses onto ``source`` (``ShmArena``-like: ``alloc``
        returning a view or ``None``, ``owns`` for recycle checks).  Pass
        ``None`` to detach; already-issued views stay valid until the
        caller unlinks the segment."""
        self._shared_source = source

    def _take_shared(self, shape: Tuple[int, ...], dtype) -> Optional[np.ndarray]:
        if self._shared_source is None:
            return None
        return self._shared_source.alloc(shape, dtype)

    @staticmethod
    def _c_strides(shape: Tuple[int, ...], itemsize: int) -> Tuple[int, ...]:
        strides = []
        acc = itemsize
        for dim in reversed(shape):
            strides.append(acc)
            acc *= max(dim, 1)
        return tuple(reversed(strides))

    def take(self, shape: Tuple[int, ...], dtype=DEFAULT_DTYPE) -> np.ndarray:
        shape = tuple(shape)
        dt = np.dtype(dtype)
        bucket = self._arena.get((shape, dt.str, self._c_strides(shape, dt.itemsize)))
        if bucket:
            # list.pop() is atomic, but the emptiness check above is not —
            # under data-parallel training several replica threads share this
            # arena, and two of them may race past `if bucket` with one
            # buffer left.  Losing the race means allocating fresh, never
            # sharing a buffer.
            try:
                return bucket.pop()
            except IndexError:
                pass
        shared = self._take_shared(shape, dt)
        if shared is not None:
            return shared
        return np.empty(shape, dtype=dt)

    def take_zeros(self, shape: Tuple[int, ...], dtype=DEFAULT_DTYPE) -> np.ndarray:
        buf = self.take(shape, dtype)
        buf.fill(0)
        return buf

    def take_like(self, prototype: np.ndarray) -> np.ndarray:
        """A recycled or fresh buffer with ``zeros_like(prototype)``'s layout."""
        key = (prototype.shape, np.dtype(DEFAULT_DTYPE).str, prototype.strides)
        bucket = self._arena.get(key)
        if bucket:
            try:
                return bucket.pop()  # raced empty: see take()
            except IndexError:
                pass
        # Shared source only for C-contiguous prototypes: segment views are
        # C-contiguous, and layout is part of the bitwise contract.
        if prototype.flags.c_contiguous:
            shared = self._take_shared(prototype.shape, DEFAULT_DTYPE)
            if shared is not None:
                return shared
        return np.empty_like(prototype, dtype=DEFAULT_DTYPE)

    def give(self, array: Optional[np.ndarray]) -> None:
        # Only pool buffers that own their memory (views keep their base
        # alive and could alias live data — except views we carved from our
        # own shared segment, which the pool is allowed to recycle) and
        # whose layout is a permuted compact one (what empty/empty_like
        # produce), so a future take with the same key gets exactly this
        # layout back.
        if array is None:
            return
        if array.base is not None and not (
                self._shared_source is not None and self._shared_source.owns(array)):
            return
        if not array.flags.c_contiguous:
            order = sorted(range(array.ndim), key=lambda i: array.strides[i], reverse=True)
            compact = self._c_strides(tuple(array.shape[i] for i in order), array.itemsize)
            if tuple(array.strides[i] for i in order) != compact:
                return
        key = (array.shape, array.dtype.str, array.strides)
        bucket = self._arena.setdefault(key, [])
        if len(bucket) < _ARENA_BUCKET_CAP:
            bucket.append(array)

    def accumulate(self, tensor, grad: np.ndarray) -> None:
        if not tensor.requires_grad:
            return
        grad = grad.astype(DEFAULT_DTYPE, copy=False)
        if tensor.grad is None:
            buf = self.take_like(tensor.data)
            # First touch: copy (bit-identical to zero-init + add).
            np.copyto(buf, grad)
            tensor.grad = buf
        else:
            np.add(tensor.grad, grad, out=tensor.grad)

    def release_grad(self, tensor) -> None:
        grad = tensor.grad
        tensor.grad = None
        self.give(grad)

    def clear_arena(self) -> None:
        """Drop every pooled buffer (mostly useful in tests)."""
        self._arena.clear()


@register_backend("numpy-compiled",
                  "capture-and-replay: record the op graph once, replay a "
                  "static dispatch-free schedule")
class NumpyCompiledBackend(NumpyFastBackend):
    """Graph-captured execution: numpy-fast allocation plus static replay.

    Inherits every ``numpy-fast`` policy (fused kernels, pooled buffers,
    fast gathers) and adds a *take schedule*: while :mod:`repro.compile`
    captures a step, every buffer the ops draw from the arena is logged in
    order; on replay the same buffers are served back positionally, so the
    steady-state step performs no arena-key hashing at all.  Buffers owned
    by a recorded schedule are never returned to the arena — the schedule
    itself is their pool.  Arithmetic is untouched, so results stay
    bit-identical to the ``numpy`` backend.
    """

    #: Marker the training/serving layers use to detect that capture-and-
    #: replay plans should drive the step (see ``repro.compile``).
    compiled_plans = True

    def __init__(self) -> None:
        super().__init__()
        self._sched: Optional[List[np.ndarray]] = None   # record-mode log
        self._replay: Optional[List] = None              # [buffers, cursor]
        self._owned: set = set()                         # id() of plan buffers

    # ------------------------------------------------------------------ #
    # Schedule control (driven by repro.compile)
    # ------------------------------------------------------------------ #
    def begin_record(self, log: List[np.ndarray]) -> None:
        """Log every take into ``log`` until :meth:`end_record`."""
        self._sched = log

    def end_record(self) -> None:
        self._sched = None

    def begin_replay(self, buffers: List[np.ndarray]) -> None:
        """Serve takes positionally from ``buffers`` until :meth:`end_replay`."""
        self._replay = [buffers, 0]

    def end_replay(self) -> None:
        replay, self._replay = self._replay, None
        if replay is not None and replay[1] != len(replay[0]):
            raise RuntimeError(
                f"compiled replay consumed {replay[1]} of {len(replay[0])} "
                "scheduled buffers; the plan no longer matches the op "
                "sequence (invalidate and recapture)")

    def own(self, buffers) -> None:
        """Mark plan-allocated buffers so :meth:`give` never pools them.

        A plan's static gradient buffers stay bound to live tensors across
        replays; letting the arena recycle one (``zero_grad`` →
        ``release_grad`` → ``give``) would alias plan state with unrelated
        scratch.
        """
        for buf in buffers:
            self._owned.add(id(buf))

    def disown(self, buffers) -> None:
        """Forget schedule ownership (called when a plan is evicted)."""
        for buf in buffers:
            self._owned.discard(id(buf))

    # ------------------------------------------------------------------ #
    # Buffer management: record/replay aware
    # ------------------------------------------------------------------ #
    def take(self, shape: Tuple[int, ...], dtype=DEFAULT_DTYPE) -> np.ndarray:
        replay = self._replay
        if replay is not None:
            buf = replay[0][replay[1]]
            replay[1] += 1
            return buf
        buf = super().take(shape, dtype)
        if self._sched is not None:
            self._sched.append(buf)
            self._owned.add(id(buf))
        return buf

    def take_zeros(self, shape: Tuple[int, ...], dtype=DEFAULT_DTYPE) -> np.ndarray:
        replay = self._replay
        if replay is not None:
            buf = replay[0][replay[1]]
            replay[1] += 1
            buf.fill(0)
            return buf
        return super().take_zeros(shape, dtype)  # delegates to take(): logged there

    def take_like(self, prototype: np.ndarray) -> np.ndarray:
        replay = self._replay
        if replay is not None:
            buf = replay[0][replay[1]]
            replay[1] += 1
            return buf
        buf = super().take_like(prototype)
        if self._sched is not None:
            self._sched.append(buf)
            self._owned.add(id(buf))
        return buf

    def give(self, array: Optional[np.ndarray]) -> None:
        if array is None:
            return
        if self._replay is not None or id(array) in self._owned:
            # Plan-owned buffers are replayed positionally; letting them
            # into the arena would hand live plan memory to unrelated takes.
            return
        super().give(array)


_active: Backend = _instance("numpy")

__all__ = [
    "DEFAULT_DTYPE",
    "Backend",
    "NumpyBackend",
    "NumpyCompiledBackend",
    "NumpyFastBackend",
    "OpCount",
    "available_backends",
    "backend_descriptions",
    "get_backend",
    "register_backend",
    "set_backend",
    "use_backend",
]
