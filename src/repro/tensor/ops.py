"""First-class autograd ops: forward/backward pairs over numpy arrays.

Each op is a tiny object with two methods: ``forward(backend, *arrays)``
computes the result and stashes whatever context backward needs;
``backward(backend, grad)`` maps the output gradient to one gradient (or
``None``) per input.  Ops never touch :class:`~repro.tensor.tensor.Tensor`
objects — the engine in ``tensor.py`` owns graph bookkeeping, and the active
:class:`~repro.tensor.backend.Backend` owns buffer policy.

Every formula here is a verbatim port of the original per-call backward
closures, so gradients are bit-for-bit identical to the seed engine.  Ops
may return broadcast/transpose *views* from ``backward`` — the backend
copies during accumulation, never writes through the returned array.

``self.needs`` (set by the engine before ``forward``) holds one bool per
input; ops skip gradient work for inputs that don't require grad.  Under
``no_grad`` the engine sets ``needs`` to ``None`` and ops skip saving
context entirely — this is the graph-free inference path.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.tensor.backend import DEFAULT_DTYPE, Backend


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were introduced or broadcast to reach ``shape``."""
    if grad.shape == shape:
        return grad
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Op:
    """Base class for one differentiable operation (one graph node)."""

    __slots__ = ("needs",)
    name = "op"

    def forward(self, be: Backend, *arrays: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, be: Backend, grad: np.ndarray) -> Sequence[Optional[np.ndarray]]:
        raise NotImplementedError

    def release(self, be: Backend) -> None:
        """Return pooled scratch to the backend once backward has run."""


# --------------------------------------------------------------------------- #
# Elementwise arithmetic
# --------------------------------------------------------------------------- #
class AddOp(Op):
    __slots__ = ("a_shape", "b_shape")
    name = "add"

    def forward(self, be, a, b):
        if self.needs is not None:
            self.a_shape, self.b_shape = a.shape, b.shape
        return a + b

    def backward(self, be, grad):
        return (
            _unbroadcast(grad, self.a_shape) if self.needs[0] else None,
            _unbroadcast(grad, self.b_shape) if self.needs[1] else None,
        )


class MulOp(Op):
    __slots__ = ("a", "b")
    name = "mul"

    def forward(self, be, a, b):
        if self.needs is not None:
            self.a, self.b = a, b
        return a * b

    def backward(self, be, grad):
        return (
            _unbroadcast(grad * self.b, self.a.shape) if self.needs[0] else None,
            _unbroadcast(grad * self.a, self.b.shape) if self.needs[1] else None,
        )


class NegOp(Op):
    __slots__ = ()
    name = "neg"

    def forward(self, be, a):
        return -a

    def backward(self, be, grad):
        return (-grad,)


class DivOp(Op):
    __slots__ = ("a", "b")
    name = "div"

    def forward(self, be, a, b):
        if self.needs is not None:
            self.a, self.b = a, b
        return a / b

    def backward(self, be, grad):
        return (
            _unbroadcast(grad / self.b, self.a.shape) if self.needs[0] else None,
            _unbroadcast(-grad * self.a / (self.b ** 2), self.b.shape) if self.needs[1] else None,
        )


class PowOp(Op):
    __slots__ = ("a", "exponent")
    name = "pow"

    def __init__(self, exponent: float):
        self.exponent = exponent

    def forward(self, be, a):
        if self.needs is not None:
            self.a = a
        return a ** self.exponent

    def backward(self, be, grad):
        return (grad * self.exponent * self.a ** (self.exponent - 1),)


# --------------------------------------------------------------------------- #
# Elementwise functions
# --------------------------------------------------------------------------- #
class ExpOp(Op):
    __slots__ = ("out",)
    name = "exp"

    def forward(self, be, a):
        out = np.exp(a)
        if self.needs is not None:
            self.out = out
        return out

    def backward(self, be, grad):
        return (grad * self.out,)


class LogOp(Op):
    __slots__ = ("a",)
    name = "log"

    def forward(self, be, a):
        if self.needs is not None:
            self.a = a
        return np.log(a)

    def backward(self, be, grad):
        return (grad / self.a,)


class TanhOp(Op):
    __slots__ = ("out",)
    name = "tanh"

    def forward(self, be, a):
        out = np.tanh(a)
        if self.needs is not None:
            self.out = out
        return out

    def backward(self, be, grad):
        return (grad * (1.0 - self.out ** 2),)


class SigmoidOp(Op):
    __slots__ = ("out",)
    name = "sigmoid"

    def forward(self, be, a):
        out = 1.0 / (1.0 + np.exp(-a))
        if self.needs is not None:
            self.out = out
        return out

    def backward(self, be, grad):
        return (grad * self.out * (1.0 - self.out),)


class ReluOp(Op):
    __slots__ = ("mask",)
    name = "relu"

    def forward(self, be, a):
        mask = a > 0
        if self.needs is not None:
            self.mask = mask
        return a * mask

    def backward(self, be, grad):
        return (grad * self.mask,)


class GeluOp(Op):
    """GELU, tanh approximation (same constants as the seed implementation)."""

    __slots__ = ("a", "tanh_inner", "c")
    name = "gelu"

    def forward(self, be, a):
        c = np.sqrt(2.0 / np.pi).astype(DEFAULT_DTYPE)
        inner = c * (a + 0.044715 * a ** 3)
        tanh_inner = np.tanh(inner)
        if self.needs is not None:
            self.a, self.tanh_inner, self.c = a, tanh_inner, c
        return 0.5 * a * (1.0 + tanh_inner)

    def backward(self, be, grad):
        a, tanh_inner, c = self.a, self.tanh_inner, self.c
        sech2 = 1.0 - tanh_inner ** 2
        d_inner = c * (1.0 + 3 * 0.044715 * a ** 2)
        local = 0.5 * (1.0 + tanh_inner) + 0.5 * a * sech2 * d_inner
        return (grad * local,)


class AbsOp(Op):
    __slots__ = ("sign",)
    name = "abs"

    def forward(self, be, a):
        if self.needs is not None:
            self.sign = np.sign(a)
        return np.abs(a)

    def backward(self, be, grad):
        return (grad * self.sign,)


class ClipOp(Op):
    __slots__ = ("low", "high", "mask")
    name = "clip"

    def __init__(self, low: float, high: float):
        self.low, self.high = low, high

    def forward(self, be, a):
        if self.needs is not None:
            self.mask = (a >= self.low) & (a <= self.high)
        return np.clip(a, self.low, self.high)

    def backward(self, be, grad):
        return (grad * self.mask,)


# --------------------------------------------------------------------------- #
# Reductions
# --------------------------------------------------------------------------- #
class SumOp(Op):
    __slots__ = ("axis", "keepdims", "in_shape")
    name = "sum"

    def __init__(self, axis=None, keepdims: bool = False):
        self.axis, self.keepdims = axis, keepdims

    def forward(self, be, a):
        if self.needs is not None:
            self.in_shape = a.shape
        return a.sum(axis=self.axis, keepdims=self.keepdims)

    def backward(self, be, grad):
        if self.axis is not None and not self.keepdims:
            axes = self.axis if isinstance(self.axis, tuple) else (self.axis,)
            grad = np.expand_dims(grad, axes)
        # Broadcast view — the backend copies during accumulation.
        return (np.broadcast_to(grad, self.in_shape),)


class MaxOp(Op):
    __slots__ = ("axis", "keepdims", "a", "out")
    name = "max"

    def __init__(self, axis=None, keepdims: bool = False):
        self.axis, self.keepdims = axis, keepdims

    def forward(self, be, a):
        out = a.max(axis=self.axis, keepdims=self.keepdims)
        if self.needs is not None:
            self.a, self.out = a, out
        return out

    def backward(self, be, grad):
        expanded = self.out
        if self.axis is not None and not self.keepdims:
            axes = self.axis if isinstance(self.axis, tuple) else (self.axis,)
            grad = np.expand_dims(grad, axes)
            expanded = np.expand_dims(self.out, axes)
        mask = (self.a == expanded).astype(DEFAULT_DTYPE)
        # Split gradient equally among ties to keep the op well defined.
        counts = mask.sum(axis=self.axis, keepdims=True) if self.axis is not None else mask.sum()
        return (mask * grad / counts,)


# --------------------------------------------------------------------------- #
# Shape manipulation
# --------------------------------------------------------------------------- #
class ReshapeOp(Op):
    __slots__ = ("shape", "in_shape")
    name = "reshape"

    def __init__(self, shape):
        self.shape = shape

    def forward(self, be, a):
        if self.needs is not None:
            self.in_shape = a.shape
        return a.reshape(self.shape)

    def backward(self, be, grad):
        return (grad.reshape(self.in_shape),)


class TransposeOp(Op):
    __slots__ = ("axes", "inverse")
    name = "transpose"

    def __init__(self, axes: Tuple[int, ...]):
        self.axes = axes

    def forward(self, be, a):
        if self.needs is not None:
            self.inverse = np.argsort(self.axes)
        return a.transpose(self.axes)

    def backward(self, be, grad):
        return (grad.transpose(self.inverse),)


class GetItemOp(Op):
    __slots__ = ("index", "in_shape", "_scratch")
    name = "getitem"

    def __init__(self, index):
        self.index = index
        self._scratch = None

    def forward(self, be, a):
        if self.needs is not None:
            self.in_shape = a.shape
        return a[self.index]

    def backward(self, be, grad):
        if be.pool_buffers:
            self._scratch = out = be.take_zeros(self.in_shape)
        else:
            out = np.zeros(self.in_shape, dtype=DEFAULT_DTYPE)
        np.add.at(out, self.index, grad)
        return (out,)

    def release(self, be):
        be.give(self._scratch)
        self._scratch = None


class PadOp(Op):
    __slots__ = ("pad_width", "slices")
    name = "pad"

    def __init__(self, pad_width):
        self.pad_width = pad_width

    def forward(self, be, a):
        if self.needs is not None:
            self.slices = tuple(
                slice(before, before + dim)
                for (before, _after), dim in zip(self.pad_width, a.shape)
            )
        return np.pad(a, self.pad_width)

    def backward(self, be, grad):
        return (grad[self.slices],)


class CloneOp(Op):
    __slots__ = ()
    name = "clone"

    def forward(self, be, a):
        return a.copy()

    def backward(self, be, grad):
        return (grad,)


class ConcatOp(Op):
    __slots__ = ("axis", "offsets")
    name = "concat"

    def __init__(self, axis: int):
        self.axis = axis

    def forward(self, be, *arrays):
        if self.needs is not None:
            sizes = [a.shape[self.axis] for a in arrays]
            self.offsets = np.cumsum([0] + sizes)
        return np.concatenate(arrays, axis=self.axis)

    def backward(self, be, grad):
        grads = []
        for i, (start, end) in enumerate(zip(self.offsets[:-1], self.offsets[1:])):
            if not self.needs[i]:
                grads.append(None)
                continue
            index = [slice(None)] * grad.ndim
            index[self.axis] = slice(start, end)
            grads.append(grad[tuple(index)])
        return grads


# --------------------------------------------------------------------------- #
# Linear algebra
# --------------------------------------------------------------------------- #
class MatMulOp(Op):
    __slots__ = ("a", "b")
    name = "matmul"

    def forward(self, be, a, b):
        if self.needs is not None:
            self.a, self.b = a, b
        out = a @ b
        if out.ndim >= 1 and a.ndim >= 1:
            be.add_flops(self.name, 2.0 * out.size * a.shape[-1])
        return out

    def backward(self, be, grad):
        a, b = self.a, self.b
        need_a, need_b = self.needs
        if a.ndim == 1 and b.ndim == 1:
            return (grad * b if need_a else None, grad * a if need_b else None)
        a2 = a if a.ndim > 1 else a.reshape(1, -1)
        b2 = b if b.ndim > 1 else b.reshape(-1, 1)
        g2 = grad
        if a.ndim == 1:
            g2 = np.expand_dims(grad, -2)
        if b.ndim == 1:
            g2 = np.expand_dims(g2, -1)
        grad_for_a = grad_for_b = None
        if need_a:
            grad_a = g2 @ np.swapaxes(b2, -1, -2)
            if a.ndim == 1:
                grad_a = grad_a.reshape(a.shape) if grad_a.size == a.size \
                    else _unbroadcast(grad_a, (1,) + a.shape).reshape(a.shape)
            grad_for_a = _unbroadcast(grad_a, a.shape)
        if need_b:
            grad_b = np.swapaxes(a2, -1, -2) @ g2
            if b.ndim == 1:
                grad_b = grad_b.reshape(b.shape) if grad_b.size == b.size \
                    else _unbroadcast(grad_b, b.shape + (1,)).reshape(b.shape)
            grad_for_b = _unbroadcast(grad_b, b.shape)
        return (grad_for_a, grad_for_b)


CORE_OPS = (
    AddOp, MulOp, NegOp, DivOp, PowOp,
    ExpOp, LogOp, TanhOp, SigmoidOp, ReluOp, GeluOp, AbsOp, ClipOp,
    SumOp, MaxOp,
    ReshapeOp, TransposeOp, GetItemOp, PadOp, CloneOp, ConcatOp,
    MatMulOp,
)

__all__ = ["Op", "_unbroadcast"] + [cls.__name__ for cls in CORE_OPS] + ["CORE_OPS"]
