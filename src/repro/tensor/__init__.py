"""A small reverse-mode automatic differentiation engine over numpy arrays.

This package is the substrate that replaces PyTorch's autograd/nn for the
Cuttlefish reproduction.  The public surface mirrors the subset of the
``torch`` API the paper's training code relies on:

* :class:`repro.tensor.Tensor` — an n-dimensional array that records the
  operations applied to it and can back-propagate gradients.
* :mod:`repro.tensor.functional` — stateless neural-network operations
  (convolution, pooling, softmax/cross-entropy, layer/batch normalisation,
  dropout, attention helpers).

Design notes
------------
The engine is tape based.  Each operation creates a new :class:`Tensor`
holding references to its parents and a closure that accumulates gradients
into them.  ``Tensor.backward`` topologically sorts the tape and runs the
closures in reverse order.  All heavy lifting (matmul, im2col convolution)
is delegated to vectorised numpy so that the Python overhead stays
proportional to the number of *operations*, not the number of elements.
"""

from repro.tensor.tensor import Tensor, no_grad, is_grad_enabled
from repro.tensor import functional

__all__ = ["Tensor", "no_grad", "is_grad_enabled", "functional"]
