"""A small reverse-mode automatic differentiation engine over numpy arrays.

This package is the substrate that replaces PyTorch's autograd/nn for the
Cuttlefish reproduction.  The public surface mirrors the subset of the
``torch`` API the paper's training code relies on:

* :class:`repro.tensor.Tensor` — an n-dimensional array that records the
  operations applied to it and can back-propagate gradients.
* :mod:`repro.tensor.functional` — stateless neural-network operations
  (convolution, pooling, softmax/cross-entropy, fused hot-path kernels,
  dropout, attention helpers).
* :mod:`repro.tensor.backend` — the execution-backend registry
  (``register_backend`` / ``get_backend`` / ``set_backend`` /
  ``use_backend``) deciding memory strategy and kernel fusion.

Design notes
------------
The engine is tape based.  Each operation is a first-class
:class:`repro.tensor.ops.Op` (a forward/backward pair); the output tensor
holds references to its parents and the op that produced it.
``Tensor.backward`` topologically sorts the tape and runs each op's backward
in reverse order, with gradient-buffer placement delegated to the active
backend.  All heavy lifting (matmul, im2col convolution) is vectorised
numpy, so the Python overhead stays proportional to the number of
*operations*, not the number of elements; under :func:`no_grad` no graph is
constructed at all.
"""

from repro.tensor.backend import (
    Backend,
    available_backends,
    backend_descriptions,
    get_backend,
    register_backend,
    set_backend,
    use_backend,
)
from repro.tensor.ops import Op
from repro.tensor.tensor import Tensor, apply_op, is_grad_enabled, no_grad
from repro.tensor import functional

__all__ = [
    "Backend",
    "Op",
    "Tensor",
    "apply_op",
    "available_backends",
    "backend_descriptions",
    "functional",
    "get_backend",
    "is_grad_enabled",
    "no_grad",
    "register_backend",
    "set_backend",
    "use_backend",
]
