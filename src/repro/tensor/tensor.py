"""Core reverse-mode autograd tensor.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records enough
information to back-propagate gradients through a computation graph.  Each
operation is a first-class :class:`~repro.tensor.ops.Op` object (a
forward/backward pair) dispatched through the active execution backend
(:mod:`repro.tensor.backend`); ``Tensor.backward`` topologically sorts the
recorded graph and runs each op's backward in reverse order, letting the
backend decide where gradient buffers come from.

Under :func:`no_grad` no graph is constructed at all — ops compute their
forward arrays without saving context and the result carries neither
children nor an op, which is the fast path ``evaluate()`` and the profiler
probes run on.
"""

from __future__ import annotations

import contextlib
from typing import Optional, Sequence, Tuple, Union

import numpy as np

from repro.tensor import backend as _backend
from repro.tensor import ops as _ops
# DEFAULT_DTYPE / _unbroadcast / the backend selectors are re-exported here
# for modules that historically imported them from repro.tensor.tensor.
from repro.tensor.backend import DEFAULT_DTYPE, get_backend, set_backend, use_backend  # noqa: F401
from repro.tensor.ops import Op, _unbroadcast  # noqa: F401

_GRAD_ENABLED = True

# Active graph-capture context (a ``repro.compile.graph.CaptureContext``) or
# ``None``.  When set, every ``apply_op`` reports the op it just executed so
# the compile layer can record a replayable schedule.  Installed/removed only
# by ``repro.compile``; observation is pure — capture never changes what the
# eager step computes.
_capture = None


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _GRAD_ENABLED


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]

_SCALAR_TYPES = (int, float, np.integer, np.floating)


def _as_array(value: ArrayLike, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


def apply_op(op: Op, *inputs: "Tensor") -> "Tensor":
    """Execute ``op`` on ``inputs`` through the active backend.

    When gradients are enabled and at least one input requires grad, the
    result records the op and its parents; otherwise a bare tensor is
    returned and the op saves no context (graph-free inference).
    """
    be = _backend._active
    if _GRAD_ENABLED and any(t.requires_grad for t in inputs):
        op.needs = tuple(t.requires_grad for t in inputs)
        data = op.forward(be, *[t.data for t in inputs])
        be.record(op.name)
        out = Tensor(data, requires_grad=True, _children=inputs, _op=op.name)
        out._op_obj = op
        if _capture is not None:
            _capture.on_op(op, inputs, out)
        return out
    op.needs = None
    data = op.forward(be, *[t.data for t in inputs])
    be.record(op.name)
    out = Tensor(data)
    if _capture is not None:
        _capture.on_op(op, inputs, out)
    return out


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Converted to ``float32`` by default.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_prev", "_op", "_op_obj")
    __array_priority__ = 200  # ensure ndarray.__mul__(Tensor) defers to us

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _children: Tuple["Tensor", ...] = (),
        _op: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._prev: Tuple[Tensor, ...] = _children if _GRAD_ENABLED else ()
        self._op = _op
        self._op_obj: Optional[Op] = None

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(
                f"item() requires a tensor with exactly one element, "
                f"got shape {self.shape} ({self.data.size} elements)"
            )
        return float(self.data.reshape(-1)[0])

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        return apply_op(_ops.CloneOp(), self)

    def zero_grad(self) -> None:
        _backend._active.release_grad(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self._op!r})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Graph utilities
    # ------------------------------------------------------------------ #
    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor through the graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        # Topological order of the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node._prev:
                if id(child) not in visited:
                    stack.append((child, False))

        be = _backend._active
        release = not be.retain_intermediate_grads
        pooled = be.pool_buffers
        self.grad = grad.astype(DEFAULT_DTYPE, copy=True).reshape(self.data.shape)
        for node in reversed(topo):
            op = node._op_obj
            if op is None or node.grad is None:
                continue
            if op.needs is None:
                # needs is cleared when a pooling backend recycles the op's
                # context; replaying the graph would read freed buffers.
                raise RuntimeError(
                    "this graph was already backpropagated on a buffer-pooling "
                    "backend (its op context was recycled); rebuild the graph "
                    "or use the reference 'numpy' backend for double backward"
                )
            input_grads = op.backward(be, node.grad)
            for child, g in zip(node._prev, input_grads):
                if g is not None:
                    be.accumulate(child, g)
            if release and node is not self:
                be.release_grad(node)
            if pooled:
                op.release(be)
                op.needs = None

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return apply_op(_ops.AddOp(), self, other)

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return apply_op(_ops.MulOp(), self, other)

    def __neg__(self) -> "Tensor":
        return apply_op(_ops.NegOp(), self)

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return apply_op(_ops.DivOp(), self, other)

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, _SCALAR_TYPES):
            raise TypeError(
                f"only scalar exponents are supported, got {type(exponent).__name__}"
            )
        return apply_op(_ops.PowOp(float(exponent)), self)

    __radd__ = __add__
    __rmul__ = __mul__

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        return apply_op(_ops.ExpOp(), self)

    def log(self) -> "Tensor":
        return apply_op(_ops.LogOp(), self)

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        return apply_op(_ops.TanhOp(), self)

    def sigmoid(self) -> "Tensor":
        return apply_op(_ops.SigmoidOp(), self)

    def relu(self) -> "Tensor":
        return apply_op(_ops.ReluOp(), self)

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        return apply_op(_ops.GeluOp(), self)

    def abs(self) -> "Tensor":
        return apply_op(_ops.AbsOp(), self)

    def clip(self, low: float, high: float) -> "Tensor":
        return apply_op(_ops.ClipOp(low, high), self)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_ops.SumOp(axis, keepdims), self)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        return apply_op(_ops.MaxOp(axis, keepdims), self)

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return apply_op(_ops.ReshapeOp(shape), self)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        return apply_op(_ops.TransposeOp(axes), self)

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        return apply_op(_ops.GetItemOp(index), self)

    def pad(self, pad_width) -> "Tensor":
        return apply_op(_ops.PadOp(pad_width), self)

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(shape)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return apply_op(_ops.MatMulOp(), self, other)

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape).astype(DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        return apply_op(_ops.ConcatOp(axis), *tensors)

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        expanded = [t.reshape(t.shape[:axis] + (1,) + t.shape[axis:]) for t in tensors]
        return Tensor.concatenate(expanded, axis=axis)
