"""Core reverse-mode autograd tensor.

The :class:`Tensor` class wraps a ``numpy.ndarray`` and records enough
information to back-propagate gradients through a computation graph.  Only
the operations required by the neural networks in this repository are
implemented; each is written as a vectorised numpy expression with a matching
vectorised backward closure.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable, Optional, Sequence, Tuple, Union

import numpy as np

DEFAULT_DTYPE = np.float32

_GRAD_ENABLED = True


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (like ``torch.no_grad``)."""
    global _GRAD_ENABLED
    previous = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = previous


def is_grad_enabled() -> bool:
    """Return whether operations currently record the autograd tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: Tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` over axes that were introduced or broadcast to reach ``shape``."""
    if grad.shape == shape:
        return grad
    # Sum over leading axes added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


ArrayLike = Union["Tensor", np.ndarray, float, int, list, tuple]


def _as_array(value: ArrayLike, dtype=DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(value, Tensor):
        return value.data
    return np.asarray(value, dtype=dtype)


class Tensor:
    """An n-dimensional array with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Array-like payload.  Converted to ``float32`` by default.
    requires_grad:
        Whether gradients should be accumulated into :attr:`grad` during
        :meth:`backward`.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")
    __array_priority__ = 200  # ensure ndarray.__mul__(Tensor) defers to us

    def __init__(
        self,
        data: ArrayLike,
        requires_grad: bool = False,
        _children: Tuple["Tensor", ...] = (),
        _op: str = "",
    ):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=DEFAULT_DTYPE)
        self.grad: Optional[np.ndarray] = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward: Callable[[], None] = lambda: None
        self._prev: Tuple[Tensor, ...] = _children if _GRAD_ENABLED else ()
        self._op = _op

    # ------------------------------------------------------------------ #
    # Basic introspection
    # ------------------------------------------------------------------ #
    @property
    def shape(self) -> Tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying numpy array (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    def detach(self) -> "Tensor":
        """Return a new tensor sharing data but detached from the graph."""
        return Tensor(self.data, requires_grad=False)

    def clone(self) -> "Tensor":
        out = Tensor(self.data.copy(), requires_grad=self.requires_grad, _children=(self,), _op="clone")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad)
            out._backward = _backward
        return out

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad}, op={self._op!r})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------ #
    # Graph utilities
    # ------------------------------------------------------------------ #
    def _accumulate(self, grad: np.ndarray) -> None:
        """Add ``grad`` into this tensor's gradient buffer."""
        if not self.requires_grad:
            return
        if self.grad is None:
            self.grad = np.zeros_like(self.data, dtype=DEFAULT_DTYPE)
        self.grad += grad.astype(DEFAULT_DTYPE, copy=False)

    @staticmethod
    def _make(data: np.ndarray, children: Tuple["Tensor", ...], op: str) -> "Tensor":
        requires = _GRAD_ENABLED and any(c.requires_grad for c in children)
        return Tensor(data, requires_grad=requires, _children=children, _op=op)

    def backward(self, grad: Optional[ArrayLike] = None) -> None:
        """Back-propagate gradients from this tensor through the graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be provided for non-scalar outputs")
            grad = np.ones_like(self.data)
        grad = _as_array(grad)

        # Topological order of the graph reachable from self.
        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for child in node._prev:
                if id(child) not in visited:
                    stack.append((child, False))

        self.grad = grad.astype(DEFAULT_DTYPE, copy=True).reshape(self.data.shape)
        for node in reversed(topo):
            if node.grad is not None:
                node._backward()

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def __add__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data + other.data, (self, other), "add")
        if out.requires_grad:
            def _backward():
                self._accumulate(_unbroadcast(out.grad, self.shape))
                other._accumulate(_unbroadcast(out.grad, other.shape))
            out._backward = _backward
        return out

    def __mul__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data * other.data, (self, other), "mul")
        if out.requires_grad:
            def _backward():
                self._accumulate(_unbroadcast(out.grad * other.data, self.shape))
                other._accumulate(_unbroadcast(out.grad * self.data, other.shape))
            out._backward = _backward
        return out

    def __neg__(self) -> "Tensor":
        out = Tensor._make(-self.data, (self,), "neg")
        if out.requires_grad:
            def _backward():
                self._accumulate(-out.grad)
            out._backward = _backward
        return out

    def __sub__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        return self + (-other)

    def __truediv__(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data / other.data, (self, other), "div")
        if out.requires_grad:
            def _backward():
                self._accumulate(_unbroadcast(out.grad / other.data, self.shape))
                other._accumulate(
                    _unbroadcast(-out.grad * self.data / (other.data ** 2), other.shape)
                )
            out._backward = _backward
        return out

    def __pow__(self, exponent: float) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("only scalar exponents are supported")
        out = Tensor._make(self.data ** exponent, (self,), "pow")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * exponent * self.data ** (exponent - 1))
            out._backward = _backward
        return out

    __radd__ = __add__
    __rmul__ = __mul__

    def __rsub__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) - self

    def __rtruediv__(self, other: ArrayLike) -> "Tensor":
        return Tensor(other) / self

    # ------------------------------------------------------------------ #
    # Elementwise functions
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        out = Tensor._make(out_data, (self,), "exp")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * out_data)
            out._backward = _backward
        return out

    def log(self) -> "Tensor":
        out = Tensor._make(np.log(self.data), (self,), "log")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad / self.data)
            out._backward = _backward
        return out

    def sqrt(self) -> "Tensor":
        return self ** 0.5

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        out = Tensor._make(out_data, (self,), "tanh")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * (1.0 - out_data ** 2))
            out._backward = _backward
        return out

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        out = Tensor._make(out_data, (self,), "sigmoid")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * out_data * (1.0 - out_data))
            out._backward = _backward
        return out

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out = Tensor._make(self.data * mask, (self,), "relu")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * mask)
            out._backward = _backward
        return out

    def gelu(self) -> "Tensor":
        """Gaussian error linear unit (tanh approximation)."""
        c = np.sqrt(2.0 / np.pi).astype(DEFAULT_DTYPE)
        x = self.data
        inner = c * (x + 0.044715 * x ** 3)
        tanh_inner = np.tanh(inner)
        out_data = 0.5 * x * (1.0 + tanh_inner)
        out = Tensor._make(out_data, (self,), "gelu")
        if out.requires_grad:
            def _backward():
                sech2 = 1.0 - tanh_inner ** 2
                d_inner = c * (1.0 + 3 * 0.044715 * x ** 2)
                grad = 0.5 * (1.0 + tanh_inner) + 0.5 * x * sech2 * d_inner
                self._accumulate(out.grad * grad)
            out._backward = _backward
        return out

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        out = Tensor._make(np.abs(self.data), (self,), "abs")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * sign)
            out._backward = _backward
        return out

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        out = Tensor._make(np.clip(self.data, low, high), (self,), "clip")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad * mask)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)
        out = Tensor._make(out_data, (self,), "sum")
        if out.requires_grad:
            def _backward():
                grad = out.grad
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    grad = np.expand_dims(grad, axes)
                self._accumulate(np.broadcast_to(grad, self.shape).copy())
            out._backward = _backward
        return out

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.shape[a] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)
        out = Tensor._make(out_data, (self,), "max")
        if out.requires_grad:
            def _backward():
                grad = out.grad
                expanded = out_data
                if axis is not None and not keepdims:
                    axes = axis if isinstance(axis, tuple) else (axis,)
                    grad = np.expand_dims(grad, axes)
                    expanded = np.expand_dims(out_data, axes)
                mask = (self.data == expanded).astype(DEFAULT_DTYPE)
                # Split gradient equally among ties to keep the op well defined.
                counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
                self._accumulate(mask * grad / counts)
            out._backward = _backward
        return out

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out = Tensor._make(self.data.reshape(shape), (self,), "reshape")
        if out.requires_grad:
            def _backward():
                self._accumulate(out.grad.reshape(self.shape))
            out._backward = _backward
        return out

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        out = Tensor._make(self.data.transpose(axes), (self,), "transpose")
        if out.requires_grad:
            inverse = np.argsort(axes)
            def _backward():
                self._accumulate(out.grad.transpose(inverse))
            out._backward = _backward
        return out

    def swapaxes(self, a: int, b: int) -> "Tensor":
        axes = list(range(self.ndim))
        axes[a], axes[b] = axes[b], axes[a]
        return self.transpose(tuple(axes))

    def __getitem__(self, index) -> "Tensor":
        out = Tensor._make(self.data[index], (self,), "getitem")
        if out.requires_grad:
            def _backward():
                grad = np.zeros_like(self.data, dtype=DEFAULT_DTYPE)
                np.add.at(grad, index, out.grad)
                self._accumulate(grad)
            out._backward = _backward
        return out

    def pad(self, pad_width) -> "Tensor":
        out = Tensor._make(np.pad(self.data, pad_width), (self,), "pad")
        if out.requires_grad:
            slices = tuple(
                slice(before, before + dim)
                for (before, _after), dim in zip(pad_width, self.shape)
            )
            def _backward():
                self._accumulate(out.grad[slices])
            out._backward = _backward
        return out

    def flatten(self, start_dim: int = 0) -> "Tensor":
        shape = self.shape[:start_dim] + (-1,)
        return self.reshape(shape)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def matmul(self, other: ArrayLike) -> "Tensor":
        other = other if isinstance(other, Tensor) else Tensor(other)
        out = Tensor._make(self.data @ other.data, (self, other), "matmul")
        if out.requires_grad:
            def _backward():
                grad = out.grad
                a, b = self.data, other.data
                if a.ndim == 1 and b.ndim == 1:
                    self._accumulate(grad * b)
                    other._accumulate(grad * a)
                    return
                a2 = a if a.ndim > 1 else a.reshape(1, -1)
                b2 = b if b.ndim > 1 else b.reshape(-1, 1)
                g2 = grad
                if a.ndim == 1:
                    g2 = np.expand_dims(grad, -2)
                if b.ndim == 1:
                    g2 = np.expand_dims(g2, -1)
                grad_a = g2 @ np.swapaxes(b2, -1, -2)
                grad_b = np.swapaxes(a2, -1, -2) @ g2
                if a.ndim == 1:
                    grad_a = grad_a.reshape(a.shape) if grad_a.size == a.size else _unbroadcast(grad_a, (1,) + a.shape).reshape(a.shape)
                    self._accumulate(_unbroadcast(grad_a, self.shape))
                else:
                    self._accumulate(_unbroadcast(grad_a, self.shape))
                if b.ndim == 1:
                    grad_b = grad_b.reshape(b.shape) if grad_b.size == b.size else _unbroadcast(grad_b, b.shape + (1,)).reshape(b.shape)
                    other._accumulate(_unbroadcast(grad_b, other.shape))
                else:
                    other._accumulate(_unbroadcast(grad_b, other.shape))
            out._backward = _backward
        return out

    def __matmul__(self, other: ArrayLike) -> "Tensor":
        return self.matmul(other)

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @staticmethod
    def zeros(*shape, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.zeros(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def ones(*shape, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor(np.ones(shape, dtype=DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def randn(*shape, rng: Optional[np.random.Generator] = None, requires_grad: bool = False) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        rng = rng or np.random.default_rng()
        return Tensor(rng.standard_normal(shape).astype(DEFAULT_DTYPE), requires_grad=requires_grad)

    @staticmethod
    def concatenate(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        data = np.concatenate([t.data for t in tensors], axis=axis)
        out = Tensor._make(data, tuple(tensors), "concat")
        if out.requires_grad:
            sizes = [t.shape[axis] for t in tensors]
            offsets = np.cumsum([0] + sizes)
            def _backward():
                for t, start, end in zip(tensors, offsets[:-1], offsets[1:]):
                    index = [slice(None)] * out.grad.ndim
                    index[axis] = slice(start, end)
                    t._accumulate(out.grad[tuple(index)])
            out._backward = _backward
        return out

    @staticmethod
    def stack(tensors: Sequence["Tensor"], axis: int = 0) -> "Tensor":
        tensors = [t if isinstance(t, Tensor) else Tensor(t) for t in tensors]
        expanded = [t.reshape(t.shape[:axis] + (1,) + t.shape[axis:]) for t in tensors]
        return Tensor.concatenate(expanded, axis=axis)
