"""Stateless neural-network operations built on :class:`repro.tensor.Tensor`.

These are the building blocks used by :mod:`repro.nn` layers: im2col-based 2-D
convolution, pooling, softmax/cross-entropy losses, dropout and a handful of
helpers.  Each function constructs the forward result with plain numpy and
registers a vectorised backward closure on the output tensor.
"""

from __future__ import annotations

from typing import Optional, Tuple, Union

import numpy as np

from repro.tensor.tensor import DEFAULT_DTYPE, Tensor, _unbroadcast

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
def im2col(
    x: np.ndarray, kh: int, kw: int, stride: Tuple[int, int], pad: Tuple[int, int]
) -> np.ndarray:
    """Unroll image patches into rows.

    ``x`` has shape ``(N, C, H, W)``; the result has shape
    ``(N * out_h * out_w, C * kh * kw)`` so a convolution becomes one matmul.
    """
    n, c, h, w = x.shape
    sh, sw = stride
    ph, pw = pad
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    img = np.pad(x, [(0, 0), (0, 0), (ph, ph), (pw, pw)])
    col = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for y in range(kh):
        y_max = y + sh * out_h
        for xx in range(kw):
            x_max = xx + sw * out_w
            col[:, :, y, xx, :, :] = img[:, :, y:y_max:sh, xx:x_max:sw]
    return col.transpose(0, 4, 5, 1, 2, 3).reshape(n * out_h * out_w, -1)


def col2im(
    col: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: Tuple[int, int],
    pad: Tuple[int, int],
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch rows back into an image."""
    n, c, h, w = x_shape
    sh, sw = stride
    ph, pw = pad
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    col = col.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    img = np.zeros((n, c, h + 2 * ph + sh - 1, w + 2 * pw + sw - 1), dtype=col.dtype)
    for y in range(kh):
        y_max = y + sh * out_h
        for xx in range(kw):
            x_max = xx + sw * out_w
            img[:, :, y:y_max:sh, xx:x_max:sw] += col[:, :, y, xx, :, :]
    return img[:, :, ph:h + ph, pw:w + pw]


# --------------------------------------------------------------------------- #
# Convolution and pooling
# --------------------------------------------------------------------------- #
def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) over NCHW inputs.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.
    """
    if not isinstance(x, Tensor):
        x = Tensor(x)
    stride = _pair(stride)
    padding = _pair(padding)
    n, c, h, w = x.shape
    out_c, in_c, kh, kw = weight.shape
    if in_c != c:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {in_c}")
    out_h = (h + 2 * padding[0] - kh) // stride[0] + 1
    out_w = (w + 2 * padding[1] - kw) // stride[1] + 1

    col = im2col(x.data, kh, kw, stride, padding)                 # (N*oh*ow, C*kh*kw)
    w2d = weight.data.reshape(out_c, -1)                          # (out_c, C*kh*kw)
    out2d = col @ w2d.T                                           # (N*oh*ow, out_c)
    if bias is not None:
        out2d = out2d + bias.data.reshape(1, -1)
    out_data = out2d.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)

    children = (x, weight) if bias is None else (x, weight, bias)
    out = Tensor._make(out_data, children, "conv2d")
    if out.requires_grad:
        def _backward():
            grad2d = out.grad.transpose(0, 2, 3, 1).reshape(-1, out_c)
            if bias is not None and bias.requires_grad:
                bias._accumulate(grad2d.sum(axis=0).reshape(bias.shape))
            if weight.requires_grad:
                grad_w = grad2d.T @ col
                weight._accumulate(grad_w.reshape(weight.shape))
            if x.requires_grad:
                grad_col = grad2d @ w2d
                x._accumulate(col2im(grad_col, x.shape, kh, kw, stride, padding))
        out._backward = _backward
    return out


def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> Tensor:
    """Max pooling over NCHW inputs."""
    kh, kw = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else (kh, kw)
    padding = _pair(padding)
    n, c, h, w = x.shape
    out_h = (h + 2 * padding[0] - kh) // stride[0] + 1
    out_w = (w + 2 * padding[1] - kw) // stride[1] + 1

    col = im2col(x.data, kh, kw, stride, padding)                  # (N*oh*ow, C*kh*kw)
    col = col.reshape(-1, c, kh * kw)                              # (N*oh*ow, C, kh*kw)
    argmax = col.argmax(axis=2)
    out_data = np.take_along_axis(col, argmax[..., None], axis=2)[..., 0]
    out_data = out_data.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)

    out = Tensor._make(out_data, (x,), "max_pool2d")
    if out.requires_grad:
        def _backward():
            grad = out.grad.transpose(0, 2, 3, 1).reshape(-1, c)
            grad_col = np.zeros((grad.shape[0], c, kh * kw), dtype=DEFAULT_DTYPE)
            np.put_along_axis(grad_col, argmax[..., None], grad[..., None], axis=2)
            grad_col = grad_col.reshape(-1, c * kh * kw)
            x._accumulate(col2im(grad_col, x.shape, kh, kw, stride, padding))
        out._backward = _backward
    return out


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> Tensor:
    """Average pooling over NCHW inputs."""
    kh, kw = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else (kh, kw)
    padding = _pair(padding)
    n, c, h, w = x.shape
    out_h = (h + 2 * padding[0] - kh) // stride[0] + 1
    out_w = (w + 2 * padding[1] - kw) // stride[1] + 1

    col = im2col(x.data, kh, kw, stride, padding).reshape(-1, c, kh * kw)
    out_data = col.mean(axis=2).reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
    out = Tensor._make(out_data, (x,), "avg_pool2d")
    if out.requires_grad:
        def _backward():
            grad = out.grad.transpose(0, 2, 3, 1).reshape(-1, c, 1)
            grad_col = np.broadcast_to(grad / (kh * kw), (grad.shape[0], c, kh * kw))
            grad_col = np.ascontiguousarray(grad_col).reshape(-1, c * kh * kw)
            x._accumulate(col2im(grad_col, x.shape, kh, kw, stride, padding))
        out._backward = _backward
    return out


def adaptive_avg_pool2d(x: Tensor, output_size: IntPair = 1) -> Tensor:
    """Adaptive average pooling; only integer-divisible output sizes are supported."""
    oh, ow = _pair(output_size)
    n, c, h, w = x.shape
    if h % oh or w % ow:
        raise ValueError(f"input ({h},{w}) not divisible by output size ({oh},{ow})")
    return avg_pool2d(x, kernel_size=(h // oh, w // ow))


# --------------------------------------------------------------------------- #
# Softmax family and losses
# --------------------------------------------------------------------------- #
def softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    out_data = exp / exp.sum(axis=axis, keepdims=True)
    out = Tensor._make(out_data, (x,), "softmax")
    if out.requires_grad:
        def _backward():
            g = out.grad
            dot = (g * out_data).sum(axis=axis, keepdims=True)
            x._accumulate(out_data * (g - dot))
        out._backward = _backward
    return out


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_sum = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - log_sum
    out = Tensor._make(out_data, (x,), "log_softmax")
    if out.requires_grad:
        softmax_data = np.exp(out_data)
        def _backward():
            g = out.grad
            x._accumulate(g - softmax_data * g.sum(axis=axis, keepdims=True))
        out._backward = _backward
    return out


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    label_smoothing: float = 0.0,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    Supports label smoothing (as used for the paper's ImageNet runs) and an
    ``ignore_index`` for masked-language-model style objectives.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects logits of shape (N, C)")
    n, num_classes = logits.shape
    log_probs = log_softmax(logits, axis=-1)

    if ignore_index is not None:
        valid = targets != ignore_index
        safe_targets = np.where(valid, targets, 0)
    else:
        valid = np.ones(n, dtype=bool)
        safe_targets = targets
    count = max(int(valid.sum()), 1)

    one_hot = np.zeros((n, num_classes), dtype=DEFAULT_DTYPE)
    one_hot[np.arange(n), safe_targets] = 1.0
    if label_smoothing > 0.0:
        one_hot = one_hot * (1.0 - label_smoothing) + label_smoothing / num_classes
    one_hot *= valid[:, None]

    weights = Tensor(one_hot)
    loss = -(log_probs * weights).sum() * (1.0 / count)
    return loss


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log likelihood given log-probabilities."""
    targets = np.asarray(targets)
    n, num_classes = log_probs.shape
    one_hot = np.zeros((n, num_classes), dtype=DEFAULT_DTYPE)
    one_hot[np.arange(n), targets] = 1.0
    return -(log_probs * Tensor(one_hot)).sum() * (1.0 / n)


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Numerically stable BCE on logits."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    # log(1 + exp(-|x|)) + max(x, 0) - x*t
    x = logits
    max_part = x.relu()
    stable = (1.0 + (-x.abs()).exp()).log()
    return (max_part - x * targets + stable).mean()


# --------------------------------------------------------------------------- #
# Regularisation helpers
# --------------------------------------------------------------------------- #
def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or np.random.default_rng()
    mask = (rng.random(x.shape) >= p).astype(DEFAULT_DTYPE) / (1.0 - p)
    return x * Tensor(mask)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in)."""
    if not isinstance(x, Tensor):
        x = Tensor(x)
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


def one_hot(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels → one-hot float matrix."""
    targets = np.asarray(targets)
    out = np.zeros((targets.size, num_classes), dtype=DEFAULT_DTYPE)
    out[np.arange(targets.size), targets.reshape(-1)] = 1.0
    return out.reshape(targets.shape + (num_classes,))
