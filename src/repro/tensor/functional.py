"""Stateless neural-network operations built on :class:`repro.tensor.Tensor`.

These are the building blocks used by :mod:`repro.nn` layers: im2col-based
2-D convolution, pooling, softmax/cross-entropy losses, dropout and a handful
of helpers.  Each operation is a first-class :class:`~repro.tensor.ops.Op`
dispatched through the active execution backend.

Hot-path fusion
---------------
Three kernels exist in both an unfused (seed-faithful op chain) and a fused
(single graph node) form:

* :func:`linear` / :func:`linear_act` — matmul + bias + optional relu/gelu;
* :func:`softmax_cross_entropy` — the softmax → log → nll chain as one node;
* :func:`attention_weights` — ``softmax(q @ kᵀ · scale + bias)`` as one node.

The fused forms replicate the exact float-op sequence of the unfused chains,
so both produce bit-identical values; which form runs is decided by the
active backend's ``fuse_kernels`` flag (the default ``numpy`` backend keeps
the historical chains, ``numpy-fast`` fuses).  ``conv2d`` additionally keeps
a small geometry-keyed im2col buffer cache for the graph-free inference path
and draws its training-time column/scratch buffers from the backend arena.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple, Union

import numpy as np

from repro.tensor.backend import DEFAULT_DTYPE, get_backend
from repro.tensor.ops import Op, _unbroadcast
from repro.tensor.tensor import Tensor, apply_op
from repro.tensor import tensor as _tensor_core


def _active_capture():
    """The installed ``repro.compile`` capture context, or ``None``.

    Kernels with per-batch state (cross-entropy weights, dropout masks,
    batch-norm statistics) report it here so a captured plan can refresh
    that state on every replay instead of baking the capture step's values.
    """
    return _tensor_core._capture

IntPair = Union[int, Tuple[int, int]]


def _pair(value: IntPair) -> Tuple[int, int]:
    if isinstance(value, (tuple, list)):
        return int(value[0]), int(value[1])
    return int(value), int(value)


# --------------------------------------------------------------------------- #
# im2col / col2im
# --------------------------------------------------------------------------- #
# Minimum number of output pixels before the strided-window gather pays for
# its less cache-friendly copy pattern (measured on the ResNet cell bench).
_STRIDED_IM2COL_MIN_PIXELS = 256

# Geometry-keyed buffer cache for the graph-free inference path: repeated
# forward passes over the same shapes (evaluate loops, profiler probes) reuse
# one column buffer per conv geometry instead of reallocating it per call.
_IM2COL_CACHE: "OrderedDict[tuple, np.ndarray]" = OrderedDict()
_IM2COL_CACHE_CAP = 16


def _cached_col_buffer(key: tuple, rows: int, cols: int, dtype) -> np.ndarray:
    buf = _IM2COL_CACHE.get(key)
    if buf is None:
        buf = np.empty((rows, cols), dtype=dtype)
        _IM2COL_CACHE[key] = buf
        while len(_IM2COL_CACHE) > _IM2COL_CACHE_CAP:
            _IM2COL_CACHE.popitem(last=False)
    else:
        _IM2COL_CACHE.move_to_end(key)
    return buf


def clear_im2col_cache() -> None:
    """Drop the inference-path im2col buffers (mostly useful in tests)."""
    _IM2COL_CACHE.clear()


def _conv_geometry(shape, kh, kw, stride, pad):
    n, c, h, w = shape
    sh, sw = stride
    ph, pw = pad
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    return n, c, h, w, out_h, out_w


def im2col(
    x: np.ndarray,
    kh: int,
    kw: int,
    stride: Tuple[int, int],
    pad: Tuple[int, int],
    out: Optional[np.ndarray] = None,
    fast: bool = False,
) -> np.ndarray:
    """Unroll image patches into rows.

    ``x`` has shape ``(N, C, H, W)``; the result has shape
    ``(N * out_h * out_w, C * kh * kw)`` so a convolution becomes one matmul.
    ``out``, when given, must have exactly that shape and receives the
    columns in place (this is how the backend arena and the inference cache
    recycle the buffer).  ``fast`` selects the cache-optimised gather
    strategies (1x1 shortcut, strided window view) used by backends with
    ``fast_gather``; every strategy produces bit-identical results — they
    only differ in copy pattern.
    """
    n, c, h, w, out_h, out_w = _conv_geometry(x.shape, kh, kw, stride, pad)
    sh, sw = stride
    ph, pw = pad
    rows, cols = n * out_h * out_w, c * kh * kw
    img = np.pad(x, [(0, 0), (0, 0), (ph, ph), (pw, pw)]) if (ph or pw) else x

    if fast and kh == 1 and kw == 1:
        # A 1x1 kernel is a pure layout change: NCHW -> (N*oh*ow, C).
        if out is None:
            out = np.empty((rows, cols), dtype=x.dtype)
        np.copyto(out.reshape(n, out_h, out_w, c), img[:, :, ::sh, ::sw].transpose(0, 2, 3, 1))
        return out
    if fast and out_h * out_w >= _STRIDED_IM2COL_MIN_PIXELS:
        if out is None:
            out = np.empty((rows, cols), dtype=x.dtype)
        win = np.lib.stride_tricks.sliding_window_view(img, (kh, kw), axis=(2, 3))
        src = win[:, :, ::sh, ::sw].transpose(0, 2, 3, 1, 4, 5)
        np.copyto(out.reshape(n, out_h, out_w, c, kh, kw), src)
        return out

    col = np.empty((n, c, kh, kw, out_h, out_w), dtype=x.dtype)
    for y in range(kh):
        y_max = y + sh * out_h
        for xx in range(kw):
            x_max = xx + sw * out_w
            col[:, :, y, xx, :, :] = img[:, :, y:y_max:sh, xx:x_max:sw]
    src = col.transpose(0, 4, 5, 1, 2, 3)
    if out is None:
        return src.reshape(rows, cols)
    np.copyto(out.reshape(n, out_h, out_w, c, kh, kw), src)
    return out


def col2im(
    col: np.ndarray,
    x_shape: Tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: Tuple[int, int],
    pad: Tuple[int, int],
    img_out: Optional[np.ndarray] = None,
    fast: bool = False,
) -> np.ndarray:
    """Inverse of :func:`im2col`: scatter-add patch rows back into an image.

    ``img_out`` optionally supplies the (padded) scratch image buffer; the
    returned array is a view into it.  ``fast`` materialises the permuted
    column tensor contiguously before the scatter loop (bit-identical sums,
    cache-friendlier reads).
    """
    n, c, h, w = x_shape
    sh, sw = stride
    ph, pw = pad
    out_h = (h + 2 * ph - kh) // sh + 1
    out_w = (w + 2 * pw - kw) // sw + 1
    col = col.reshape(n, out_h, out_w, c, kh, kw).transpose(0, 3, 4, 5, 1, 2)
    if fast and (kh > 1 or kw > 1):
        col = np.ascontiguousarray(col)
    padded_shape = (n, c, h + 2 * ph + sh - 1, w + 2 * pw + sw - 1)
    if img_out is None:
        img = np.zeros(padded_shape, dtype=col.dtype)
    else:
        img = img_out
        img.fill(0)
    for y in range(kh):
        y_max = y + sh * out_h
        for xx in range(kw):
            x_max = xx + sw * out_w
            img[:, :, y:y_max:sh, xx:x_max:sw] += col[:, :, y, xx, :, :]
    return img[:, :, ph:h + ph, pw:w + pw]


def padded_image_shape(x_shape, kh, kw, stride, pad) -> Tuple[int, int, int, int]:
    n, c, h, w = x_shape
    return (n, c, h + 2 * pad[0] + stride[0] - 1, w + 2 * pad[1] + stride[1] - 1)


# --------------------------------------------------------------------------- #
# Convolution and pooling
# --------------------------------------------------------------------------- #
class Conv2dOp(Op):
    """im2col convolution over NCHW inputs as a single graph node."""

    __slots__ = ("stride", "padding", "col", "w2d", "x_shape", "w_shape",
                 "b_shape", "out_c", "_col_pooled", "_scratch")
    name = "conv2d"

    def __init__(self, stride: Tuple[int, int], padding: Tuple[int, int]):
        self.stride = stride
        self.padding = padding
        self._col_pooled = False
        self._scratch = ()

    def forward(self, be, x, weight, bias=None):
        out_c, in_c, kh, kw = weight.shape
        n, c, h, w, out_h, out_w = _conv_geometry(x.shape, kh, kw, self.stride, self.padding)
        rows, cols = n * out_h * out_w, c * kh * kw

        if self.needs is None:
            key = (x.shape, kh, kw, self.stride, self.padding, x.dtype.str)
            col = im2col(x, kh, kw, self.stride, self.padding,
                         out=_cached_col_buffer(key, rows, cols, x.dtype),
                         fast=be.fast_gather)
        elif be.pool_buffers:
            col = im2col(x, kh, kw, self.stride, self.padding,
                         out=be.take((rows, cols), x.dtype), fast=be.fast_gather)
            self._col_pooled = True
        else:
            col = im2col(x, kh, kw, self.stride, self.padding, fast=be.fast_gather)

        w2d = weight.reshape(out_c, -1)
        out2d = col @ w2d.T
        be.add_flops(self.name, 2.0 * rows * cols * out_c)
        if bias is not None:
            out2d = out2d + bias.reshape(1, -1)
        out = out2d.reshape(n, out_h, out_w, out_c).transpose(0, 3, 1, 2)

        if self.needs is not None:
            self.col = col
            self.w2d = w2d
            self.x_shape = x.shape
            self.w_shape = weight.shape
            self.b_shape = bias.shape if bias is not None else None
            self.out_c = out_c
        return out

    def backward(self, be, grad):
        out_c = self.out_c
        grad2d = grad.transpose(0, 2, 3, 1).reshape(-1, out_c)
        grad_b = grad_w = grad_x = None
        if self.b_shape is not None and self.needs[2]:
            grad_b = grad2d.sum(axis=0).reshape(self.b_shape)
        if self.needs[1]:
            grad_w = (grad2d.T @ self.col).reshape(self.w_shape)
        if self.needs[0]:
            _, _, kh, kw = self.w_shape
            if be.pool_buffers:
                grad_col = be.take((grad2d.shape[0], self.w2d.shape[1]), grad2d.dtype)
                np.matmul(grad2d, self.w2d, out=grad_col)
                img = be.take(padded_image_shape(self.x_shape, kh, kw, self.stride, self.padding),
                              grad2d.dtype)
                grad_x = col2im(grad_col, self.x_shape, kh, kw, self.stride, self.padding,
                                img_out=img, fast=be.fast_gather)
                self._scratch = (grad_col, img)
            else:
                grad_col = grad2d @ self.w2d
                grad_x = col2im(grad_col, self.x_shape, kh, kw, self.stride, self.padding,
                                fast=be.fast_gather)
        if self.b_shape is not None:
            return (grad_x, grad_w, grad_b)
        return (grad_x, grad_w)

    def release(self, be):
        if self._col_pooled:
            be.give(self.col)
            self.col = None
            self._col_pooled = False
        for buf in self._scratch:
            be.give(buf)
        self._scratch = ()


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    stride: IntPair = 1,
    padding: IntPair = 0,
) -> Tensor:
    """2-D convolution (cross-correlation) over NCHW inputs.

    ``weight`` has shape ``(out_channels, in_channels, kh, kw)``.
    """
    if not isinstance(x, Tensor):
        x = Tensor(x)
    stride = _pair(stride)
    padding = _pair(padding)
    _, c, _, _ = x.shape
    _, in_c, _, _ = weight.shape
    if in_c != c:
        raise ValueError(f"channel mismatch: input has {c}, weight expects {in_c}")
    op = Conv2dOp(stride, padding)
    if bias is not None:
        return apply_op(op, x, weight, bias)
    return apply_op(op, x, weight)


class MaxPool2dOp(Op):
    __slots__ = ("kernel", "stride", "padding", "argmax", "x_shape", "channels")
    name = "max_pool2d"

    def __init__(self, kernel, stride, padding):
        self.kernel = kernel
        self.stride = stride
        self.padding = padding

    def forward(self, be, x):
        kh, kw = self.kernel
        n, c, h, w, out_h, out_w = _conv_geometry(x.shape, kh, kw, self.stride, self.padding)
        rows, cols = n * out_h * out_w, c * kh * kw
        if self.needs is None:
            key = ("pool", x.shape, kh, kw, self.stride, self.padding, x.dtype.str)
            col = im2col(x, kh, kw, self.stride, self.padding,
                         out=_cached_col_buffer(key, rows, cols, x.dtype),
                         fast=be.fast_gather)
        else:
            col = im2col(x, kh, kw, self.stride, self.padding, fast=be.fast_gather)
        col = col.reshape(-1, c, kh * kw)
        argmax = col.argmax(axis=2)
        out = np.take_along_axis(col, argmax[..., None], axis=2)[..., 0]
        out = out.reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        if self.needs is not None:
            self.argmax = argmax
            self.x_shape = x.shape
            self.channels = c
        return out

    def backward(self, be, grad):
        kh, kw = self.kernel
        c = self.channels
        g = grad.transpose(0, 2, 3, 1).reshape(-1, c)
        grad_col = np.zeros((g.shape[0], c, kh * kw), dtype=DEFAULT_DTYPE)
        np.put_along_axis(grad_col, self.argmax[..., None], g[..., None], axis=2)
        grad_col = grad_col.reshape(-1, c * kh * kw)
        return (col2im(grad_col, self.x_shape, kh, kw, self.stride, self.padding,
                       fast=be.fast_gather),)


def max_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> Tensor:
    """Max pooling over NCHW inputs."""
    kh, kw = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else (kh, kw)
    return apply_op(MaxPool2dOp((kh, kw), stride, _pair(padding)), x)


class AvgPool2dOp(Op):
    __slots__ = ("kernel", "stride", "padding", "x_shape", "channels")
    name = "avg_pool2d"

    def __init__(self, kernel, stride, padding):
        self.kernel = kernel
        self.stride = stride
        self.padding = padding

    def forward(self, be, x):
        kh, kw = self.kernel
        n, c, h, w, out_h, out_w = _conv_geometry(x.shape, kh, kw, self.stride, self.padding)
        rows, cols = n * out_h * out_w, c * kh * kw
        if self.needs is None:
            key = ("pool", x.shape, kh, kw, self.stride, self.padding, x.dtype.str)
            col = im2col(x, kh, kw, self.stride, self.padding,
                         out=_cached_col_buffer(key, rows, cols, x.dtype),
                         fast=be.fast_gather)
        else:
            col = im2col(x, kh, kw, self.stride, self.padding, fast=be.fast_gather)
        out = col.reshape(-1, c, kh * kw).mean(axis=2).reshape(n, out_h, out_w, c).transpose(0, 3, 1, 2)
        if self.needs is not None:
            self.x_shape = x.shape
            self.channels = c
        return out

    def backward(self, be, grad):
        kh, kw = self.kernel
        c = self.channels
        g = grad.transpose(0, 2, 3, 1).reshape(-1, c, 1)
        grad_col = np.broadcast_to(g / (kh * kw), (g.shape[0], c, kh * kw))
        grad_col = np.ascontiguousarray(grad_col).reshape(-1, c * kh * kw)
        return (col2im(grad_col, self.x_shape, kh, kw, self.stride, self.padding,
                       fast=be.fast_gather),)


def avg_pool2d(x: Tensor, kernel_size: IntPair, stride: Optional[IntPair] = None, padding: IntPair = 0) -> Tensor:
    """Average pooling over NCHW inputs."""
    kh, kw = _pair(kernel_size)
    stride = _pair(stride) if stride is not None else (kh, kw)
    return apply_op(AvgPool2dOp((kh, kw), stride, _pair(padding)), x)


def adaptive_avg_pool2d(x: Tensor, output_size: IntPair = 1) -> Tensor:
    """Adaptive average pooling; only integer-divisible output sizes are supported."""
    oh, ow = _pair(output_size)
    n, c, h, w = x.shape
    if h % oh or w % ow:
        raise ValueError(f"input ({h},{w}) not divisible by output size ({oh},{ow})")
    return avg_pool2d(x, kernel_size=(h // oh, w // ow))


# --------------------------------------------------------------------------- #
# Softmax family and losses
# --------------------------------------------------------------------------- #
class SoftmaxOp(Op):
    __slots__ = ("axis", "out")
    name = "softmax"

    def __init__(self, axis: int):
        self.axis = axis

    def forward(self, be, x):
        shifted = x - x.max(axis=self.axis, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=self.axis, keepdims=True)
        if self.needs is not None:
            self.out = out
        return out

    def backward(self, be, grad):
        dot = (grad * self.out).sum(axis=self.axis, keepdims=True)
        return (self.out * (grad - dot),)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply_op(SoftmaxOp(axis), x)


class LogSoftmaxOp(Op):
    __slots__ = ("axis", "softmax")
    name = "log_softmax"

    def __init__(self, axis: int):
        self.axis = axis

    def forward(self, be, x):
        shifted = x - x.max(axis=self.axis, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=self.axis, keepdims=True))
        out = shifted - log_sum
        if self.needs is not None:
            self.softmax = np.exp(out)
        return out

    def backward(self, be, grad):
        return (grad - self.softmax * grad.sum(axis=self.axis, keepdims=True),)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    return apply_op(LogSoftmaxOp(axis), x)


class SoftmaxCrossEntropyOp(Op):
    """Fused softmax → log → negative-log-likelihood over (N, C) logits.

    Replicates the exact float-op sequence of the unfused
    ``-(log_softmax(x) * weights).sum() * (1/count)`` chain, so losses and
    logit gradients are bit-identical to the composed form.
    """

    __slots__ = ("weights", "scale", "softmax")
    name = "softmax_cross_entropy"

    def __init__(self, weights: np.ndarray, scale: np.ndarray):
        self.weights = weights
        self.scale = scale

    def forward(self, be, logits):
        shifted = logits - logits.max(axis=-1, keepdims=True)
        log_sum = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
        log_probs = shifted - log_sum
        loss = (-(log_probs * self.weights).sum()) * self.scale
        if self.needs is not None:
            self.softmax = np.exp(log_probs)
        return loss

    def backward(self, be, grad):
        g = (-(grad * self.scale)) * self.weights
        return (g - self.softmax * g.sum(axis=-1, keepdims=True),)


def softmax_cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    label_smoothing: float = 0.0,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Mean cross-entropy between ``logits`` (N, C) and integer ``targets`` (N,).

    Supports label smoothing (as used for the paper's ImageNet runs) and an
    ``ignore_index`` for masked-language-model style objectives.  Runs as a
    single fused node on backends with ``fuse_kernels`` and as the historical
    softmax → log → nll op chain otherwise; both produce identical values.
    """
    targets = np.asarray(targets)
    if logits.ndim != 2:
        raise ValueError("cross_entropy expects logits of shape (N, C)")
    n, num_classes = logits.shape

    one_hot_w, count = _ce_weights(targets, n, num_classes, label_smoothing, ignore_index)

    if get_backend().fuse_kernels:
        scale = np.asarray(1.0 / count, dtype=DEFAULT_DTYPE)
        op = SoftmaxCrossEntropyOp(one_hot_w, scale)
        out = apply_op(op, logits)
        cap = _active_capture()
        if cap is not None:
            # The one-hot weight matrix and 1/count scale depend on the batch
            # targets; a replayed plan must recompute them from the incoming
            # labels, so register a patch keyed on the targets array.
            def _patch(op_, targets_, _n=n, _c=num_classes,
                       _ls=label_smoothing, _ii=ignore_index):
                w, cnt = _ce_weights(np.asarray(targets_), _n, _c, _ls, _ii)
                op_.weights = w
                op_.scale = np.asarray(1.0 / cnt, dtype=DEFAULT_DTYPE)
            cap.register_attr_patch(op, targets, _patch)
        return out

    log_probs = log_softmax(logits, axis=-1)
    return -(log_probs * Tensor(one_hot_w)).sum() * (1.0 / count)


def _ce_weights(targets: np.ndarray, n: int, num_classes: int,
                label_smoothing: float, ignore_index: Optional[int]):
    """Per-sample one-hot weight matrix and valid count for cross-entropy."""
    if ignore_index is not None:
        valid = targets != ignore_index
        safe_targets = np.where(valid, targets, 0)
    else:
        valid = np.ones(n, dtype=bool)
        safe_targets = targets
    count = max(int(valid.sum()), 1)

    one_hot_w = np.zeros((n, num_classes), dtype=DEFAULT_DTYPE)
    one_hot_w[np.arange(n), safe_targets] = 1.0
    if label_smoothing > 0.0:
        one_hot_w = one_hot_w * (1.0 - label_smoothing) + label_smoothing / num_classes
    one_hot_w *= valid[:, None]
    return one_hot_w, count


def cross_entropy(
    logits: Tensor,
    targets: np.ndarray,
    label_smoothing: float = 0.0,
    ignore_index: Optional[int] = None,
) -> Tensor:
    """Alias for :func:`softmax_cross_entropy` (the fused hot-path kernel)."""
    return softmax_cross_entropy(logits, targets, label_smoothing=label_smoothing,
                                 ignore_index=ignore_index)


def nll_loss(log_probs: Tensor, targets: np.ndarray) -> Tensor:
    """Negative log likelihood given log-probabilities."""
    targets = np.asarray(targets)
    n, num_classes = log_probs.shape
    one_hot_w = np.zeros((n, num_classes), dtype=DEFAULT_DTYPE)
    one_hot_w[np.arange(n), targets] = 1.0
    return -(log_probs * Tensor(one_hot_w)).sum() * (1.0 / n)


def mse_loss(pred: Tensor, target: Union[Tensor, np.ndarray]) -> Tensor:
    target = target if isinstance(target, Tensor) else Tensor(target)
    diff = pred - target
    return (diff * diff).mean()


def binary_cross_entropy_with_logits(logits: Tensor, targets: Union[Tensor, np.ndarray]) -> Tensor:
    """Numerically stable BCE on logits."""
    targets = targets if isinstance(targets, Tensor) else Tensor(targets)
    # log(1 + exp(-|x|)) + max(x, 0) - x*t
    x = logits
    max_part = x.relu()
    stable = (1.0 + (-x.abs()).exp()).log()
    return (max_part - x * targets + stable).mean()


# --------------------------------------------------------------------------- #
# Fused linear (+ activation) kernel
# --------------------------------------------------------------------------- #
class LinearActOp(Op):
    """``activation(x @ W.T + b)`` as a single graph node.

    ``activation`` is ``None``, ``"relu"`` or ``"gelu"``.  The float-op
    sequence mirrors the unfused ``matmul → add → activation`` chain exactly.
    """

    __slots__ = ("activation", "x", "w", "b_shape", "mask", "pre", "tanh_inner")
    name = "linear_act"

    def __init__(self, activation: Optional[str]):
        if activation not in (None, "relu", "gelu"):
            raise ValueError(f"unsupported fused activation {activation!r}")
        self.activation = activation

    def forward(self, be, x, w, b=None):
        y = x @ w.transpose()
        be.add_flops(self.name, 2.0 * y.size * x.shape[-1])
        if b is not None:
            y = y + b
        out = y
        if self.activation == "relu":
            mask = y > 0
            out = y * mask
            if self.needs is not None:
                self.mask = mask
        elif self.activation == "gelu":
            c = np.sqrt(2.0 / np.pi).astype(DEFAULT_DTYPE)
            inner = c * (y + 0.044715 * y ** 3)
            tanh_inner = np.tanh(inner)
            out = 0.5 * y * (1.0 + tanh_inner)
            if self.needs is not None:
                self.pre = y
                self.tanh_inner = tanh_inner
        if self.needs is not None:
            self.x = x
            self.w = w
            self.b_shape = b.shape if b is not None else None
        return out

    def backward(self, be, grad):
        g = grad
        if self.activation == "relu":
            g = grad * self.mask
        elif self.activation == "gelu":
            c = np.sqrt(2.0 / np.pi).astype(DEFAULT_DTYPE)
            sech2 = 1.0 - self.tanh_inner ** 2
            d_inner = c * (1.0 + 3 * 0.044715 * self.pre ** 2)
            local = 0.5 * (1.0 + self.tanh_inner) + 0.5 * self.pre * sech2 * d_inner
            g = grad * local

        x, w = self.x, self.w
        grad_x = grad_w = grad_b = None
        if self.b_shape is not None and self.needs[2]:
            grad_b = _unbroadcast(g, self.b_shape)
        if self.needs[0]:
            grad_x = _unbroadcast(g @ w, x.shape)
        if self.needs[1]:
            x2 = x if x.ndim > 1 else x.reshape(1, -1)
            grad_wt = _unbroadcast(np.swapaxes(x2, -1, -2) @ g, (w.shape[1], w.shape[0]))
            grad_w = grad_wt.transpose((1, 0))
        if self.b_shape is not None:
            return (grad_x, grad_w, grad_b)
        return (grad_x, grad_w)


def linear_act(
    x: Tensor,
    weight: Tensor,
    bias: Optional[Tensor] = None,
    activation: Optional[str] = None,
) -> Tensor:
    """Fused affine map + optional activation, always as one graph node.

    ``weight`` has shape ``(out, in)``; ``activation`` is ``None``,
    ``"relu"`` or ``"gelu"``.
    """
    if not isinstance(x, Tensor):
        x = Tensor(x)
    op = LinearActOp(activation)
    if bias is not None:
        return apply_op(op, x, weight, bias)
    return apply_op(op, x, weight)


def linear(x: Tensor, weight: Tensor, bias: Optional[Tensor] = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with ``weight`` of shape (out, in).

    Dispatches to the fused single-node kernel on fusing backends and to the
    historical matmul → add chain otherwise (identical values either way).
    """
    if not isinstance(x, Tensor):
        x = Tensor(x)
    if get_backend().fuse_kernels and x.ndim >= 2:
        return linear_act(x, weight, bias, activation=None)
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


# --------------------------------------------------------------------------- #
# Fused training-mode batch norm (NCHW)
# --------------------------------------------------------------------------- #
class BatchNorm2dOp(Op):
    """Training-mode batch normalisation over NCHW as one graph node.

    Replicates the ~18-node op chain the layer otherwise records (two mean
    passes, centering, variance, normalisation, affine) with the exact same
    float-op sequence *and* the same gradient-accumulation order into ``x``,
    so results are bit-identical to the unfused chain.
    """

    __slots__ = ("eps", "mu", "var", "cnt", "centered", "root", "veps",
                 "x_hat", "gamma_r", "x_shape", "p_shape", "w_shape", "b_shape",
                 "_scratch")
    name = "batch_norm2d"

    def __init__(self, eps: float):
        self.eps = eps
        self._scratch = ()

    def forward(self, be, x, weight, bias):
        n, c, h, w = x.shape
        axes = (0, 2, 3)
        pooled = be.pool_buffers and self.needs is not None
        cnt = np.asarray(1.0 / (n * h * w), dtype=DEFAULT_DTYPE)
        mu = x.sum(axis=axes, keepdims=True) * cnt
        if pooled:
            centered = np.subtract(x, mu, out=be.take_like(x))
            sq = np.multiply(centered, centered, out=be.take_like(centered))
            var = sq.sum(axis=axes, keepdims=True) * cnt
            be.give(sq)
        else:
            centered = x - mu
            var = (centered * centered).sum(axis=axes, keepdims=True) * cnt
        veps = var + np.asarray(self.eps, dtype=DEFAULT_DTYPE)
        root = veps ** 0.5
        if pooled:
            x_hat = np.divide(centered, root, out=be.take_like(centered))
            self._scratch = (centered, x_hat)
        else:
            x_hat = centered / root
        gamma_r = weight.reshape(1, -1, 1, 1)
        out = x_hat * gamma_r + bias.reshape(1, -1, 1, 1)
        # Batch statistics are exposed for the layer's running-average update
        # even on the graph-free path.
        self.mu = mu
        self.var = var
        if self.needs is not None:
            self.cnt = cnt
            self.centered = centered
            self.root = root
            self.veps = veps
            self.x_hat = x_hat
            self.gamma_r = gamma_r
            self.x_shape = x.shape
            self.p_shape = (1, c, 1, 1)
            self.w_shape = weight.shape
            self.b_shape = bias.shape
        return out

    def backward(self, be, grad):
        pshape = self.p_shape
        pooled = be.pool_buffers
        grad_b = grad_w = grad_x = None
        if self.needs[2]:
            grad_b = _unbroadcast(grad, pshape).reshape(self.b_shape)
        if pooled:
            g_xhat = np.multiply(grad, self.gamma_r, out=be.take_like(grad))
        else:
            g_xhat = grad * self.gamma_r
        if self.needs[1]:
            if pooled:
                tmp = np.multiply(grad, self.x_hat, out=be.take_like(grad))
                grad_w = _unbroadcast(tmp, pshape).reshape(self.w_shape)
                be.give(tmp)
            else:
                grad_w = _unbroadcast(grad * self.x_hat, pshape).reshape(self.w_shape)
        if self.needs[0]:
            centered, root, veps, cnt = self.centered, self.root, self.veps, self.cnt
            # Contributions into x in the chain's reverse-topological order:
            # normalisation numerator, its mean path, the variance centering,
            # and the variance's mean path.  In-place adds below mirror the
            # chain's sequential accumulation exactly.
            if pooled:
                g_d = np.divide(g_xhat, root, out=be.take_like(g_xhat))
                t = np.multiply(np.negative(g_xhat, out=g_xhat), centered, out=g_xhat)
                np.divide(t, root ** 2, out=t)
                g_root = _unbroadcast(t, pshape)
            else:
                g_d = g_xhat / root
                g_root = _unbroadcast(-g_xhat * centered / (root ** 2), pshape)
            g_sm = (-_unbroadcast(g_d, pshape)) * cnt
            grad_x = g_d
            grad_x += np.broadcast_to(g_sm, self.x_shape)
            g_veps = g_root * 0.5 * veps ** (0.5 - 1)
            g_sq = np.broadcast_to(g_veps * cnt, self.x_shape)
            if pooled:
                gc = np.multiply(g_sq, centered, out=be.take_like(centered))
                c_grad = np.add(gc, gc, out=gc)
            else:
                gc = g_sq * centered
                c_grad = gc + gc
            grad_x += c_grad
            g_sv = (-_unbroadcast(c_grad, pshape)) * cnt
            grad_x += np.broadcast_to(g_sv, self.x_shape)
            if pooled:
                self._scratch = self._scratch + (g_xhat, g_d, gc)
        elif pooled:
            be.give(g_xhat)
        return (grad_x, grad_w, grad_b)

    def release(self, be):
        for buf in self._scratch:
            be.give(buf)
        self._scratch = ()


def batch_norm2d_train(x: Tensor, weight: Tensor, bias: Tensor, eps: float):
    """Training-mode batch norm over NCHW inputs.

    Returns ``(out, batch_mean, batch_var)`` where the statistics are numpy
    arrays of shape (1, C, 1, 1) for the caller's running-average update.
    Fused into one node on fusing backends; identical values either way.
    """
    if get_backend().fuse_kernels:
        op = BatchNorm2dOp(eps)
        out = apply_op(op, x, weight, bias)
        cap = _active_capture()
        if cap is not None:
            # The batch statistics live as op attributes (refreshed by every
            # forward), not as graph values; let the capture resolve the
            # arrays we hand back so running-average hooks can re-read them
            # on each replay.
            cap.register_attr_source(op.mu, op, "mu")
            cap.register_attr_source(op.var, op, "var")
        return out, op.mu, op.var
    axes = (0, 2, 3)
    mean = x.mean(axis=axes, keepdims=True)
    var = x.var(axis=axes, keepdims=True)
    x_hat = (x - mean) / ((var + eps) ** 0.5)
    gamma = weight.reshape((1, -1, 1, 1))
    beta = bias.reshape((1, -1, 1, 1))
    return x_hat * gamma + beta, mean.data, var.data


# --------------------------------------------------------------------------- #
# Fused attention-weight kernel
# --------------------------------------------------------------------------- #
class AttentionWeightsOp(Op):
    """``softmax(q @ kᵀ · scale + bias)`` over (N, H, L, D) heads as one node."""

    __slots__ = ("scale", "bias", "q", "k", "out")
    name = "attention_weights"

    def __init__(self, scale: float, bias: Optional[np.ndarray]):
        self.scale = np.asarray(scale, dtype=DEFAULT_DTYPE)
        self.bias = bias

    def forward(self, be, q, k):
        scores = q @ k.transpose((0, 1, 3, 2))
        be.add_flops(self.name, 2.0 * scores.size * q.shape[-1])
        scores = scores * self.scale
        if self.bias is not None:
            scores = scores + self.bias
        shifted = scores - scores.max(axis=-1, keepdims=True)
        exp = np.exp(shifted)
        out = exp / exp.sum(axis=-1, keepdims=True)
        if self.needs is not None:
            self.q = q
            self.k = k
            self.out = out
        return out

    def backward(self, be, grad):
        w = self.out
        dot = (grad * w).sum(axis=-1, keepdims=True)
        ds = w * (grad - dot)
        ds = ds * self.scale
        grad_q = grad_k = None
        if self.needs[0]:
            grad_q = ds @ self.k
        if self.needs[1]:
            grad_k = (np.swapaxes(self.q, -1, -2) @ ds).transpose((0, 1, 3, 2))
        return (grad_q, grad_k)


def attention_weights(
    q: Tensor,
    k: Tensor,
    scale: float,
    bias: Optional[np.ndarray] = None,
) -> Tensor:
    """Softmax attention weights ``softmax(q @ kᵀ · scale + bias)``.

    ``q``/``k`` have shape (N, heads, L, head_dim); ``bias`` is an optional
    additive mask broadcastable to (N, heads, L, L).  Fused into one node on
    fusing backends, identical values on either path.
    """
    if get_backend().fuse_kernels:
        return apply_op(AttentionWeightsOp(scale, bias), q, k)
    scores = q.matmul(k.transpose((0, 1, 3, 2))) * scale
    if bias is not None:
        scores = scores + Tensor(bias)
    return softmax(scores, axis=-1)


# --------------------------------------------------------------------------- #
# Regularisation helpers
# --------------------------------------------------------------------------- #
# Fallback RNG for dropout call sites that do not thread an explicit
# generator: derived once per root seed so that ``utils.seed_everything``
# still pins dropout masks (a fresh ``default_rng()`` per call would not be
# reproducible).
_DROPOUT_RNG_OFFSET = 9_907
_dropout_fallback = {"seed": None, "rng": None}


def _default_dropout_rng() -> np.random.Generator:
    from repro.utils.seed import get_rng, seed_state

    state = seed_state()
    if _dropout_fallback["seed"] != state or _dropout_fallback["rng"] is None:
        _dropout_fallback["seed"] = state
        _dropout_fallback["rng"] = get_rng(offset=_DROPOUT_RNG_OFFSET)
    return _dropout_fallback["rng"]


def dropout(x: Tensor, p: float, training: bool, rng: Optional[np.random.Generator] = None) -> Tensor:
    """Inverted dropout; identity when not training or ``p == 0``."""
    if not training or p <= 0.0:
        return x
    rng = rng or _default_dropout_rng()
    mask = (rng.random(x.shape) >= p).astype(DEFAULT_DTYPE) / (1.0 - p)
    mask_t = Tensor(mask)
    cap = _active_capture()
    if cap is not None:
        # On replay a fresh mask must be drawn from the *same* generator so
        # the mask sequence is bit-identical to an eager run.
        def _fresh_mask(_rng=rng, _shape=x.shape, _p=p):
            return (_rng.random(_shape) >= _p).astype(DEFAULT_DTYPE) / (1.0 - _p)
        cap.register_refresh(mask_t, _fresh_mask)
    return x * mask_t


def one_hot(targets: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels → one-hot float matrix."""
    targets = np.asarray(targets)
    out = np.zeros((targets.size, num_classes), dtype=DEFAULT_DTYPE)
    out[np.arange(targets.size), targets.reshape(-1)] = 1.0
    return out.reshape(targets.shape + (num_classes,))
