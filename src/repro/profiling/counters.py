"""Per-op execution counters, read straight from the tensor backend.

The execution backends count every op they dispatch (and the GEMM-bearing
ops report exact FLOPs), so profiling code can ask "what actually ran"
instead of re-deriving costs from traced shapes.  The analytical
:mod:`repro.profiling.flops` module remains the tool for *predicting* costs
of models that have not run (e.g. paper-scale variants); these counters are
the ground truth for code that has.
"""

from __future__ import annotations

import contextlib
from typing import Dict, Iterator

from repro.tensor.backend import OpCount, get_backend


def op_counters() -> Dict[str, OpCount]:
    """Snapshot of the active backend's per-op counters.

    Keys are op names (``conv2d``, ``matmul``, ``linear_act``,
    ``softmax_cross_entropy``, ``sgd_step``, ...); values carry the call
    count and, where the op reports it, exact FLOPs executed.
    """
    return get_backend().counters()


def reset_op_counters() -> None:
    """Zero the active backend's per-op counters."""
    get_backend().reset_counters()


def counted_flops() -> float:
    """Total FLOPs the active backend has counted since the last reset."""
    return sum(count.flops for count in op_counters().values())


@contextlib.contextmanager
def count_ops() -> Iterator[Dict[str, OpCount]]:
    """Context manager yielding a dict that is filled with the ops executed
    inside the block::

        with count_ops() as counts:
            model(x)
        print(counts["conv2d"].calls, counts["conv2d"].flops)
    """
    before = op_counters()
    counts: Dict[str, OpCount] = {}
    try:
        yield counts
    finally:
        after = op_counters()
        for name, count in after.items():
            prev = before.get(name)
            calls = count.calls - (prev.calls if prev else 0)
            flops = count.flops - (prev.flops if prev else 0.0)
            if calls or flops:
                counts[name] = OpCount(calls, flops)


__all__ = ["OpCount", "count_ops", "counted_flops", "op_counters", "reset_op_counters"]
