"""Thread-safe latency and batch-size statistics for the serving path.

The implementations moved to :mod:`repro.telemetry.metrics` when the unified
metrics registry absorbed them; this module re-exports the same classes so
every existing import site (and the bit/format-compatibility tests) keeps
working unchanged.  New code should create these instruments through a
:class:`repro.telemetry.MetricsRegistry` rather than instantiating them
directly.
"""

from __future__ import annotations

from repro.telemetry.metrics import (
    BatchSizeHistogram,
    DEFAULT_PERCENTILES,
    LatencyTracker,
)

__all__ = ["LatencyTracker", "BatchSizeHistogram", "DEFAULT_PERCENTILES"]
