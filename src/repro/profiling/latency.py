"""Thread-safe latency and batch-size statistics for the serving path.

The inference server (``repro.serve``) observes one duration per request and
one batch size per executed micro-batch.  Both trackers are designed for a
hot path shared by many threads: ``observe`` takes a lock only long enough to
write one slot of a fixed-size ring buffer, and percentile computation sorts
a snapshot outside the lock.

Percentiles are computed over the most recent ``window`` observations (the
ring buffer), while ``count``/``total`` accumulate over the tracker's whole
lifetime — the usual behaviour of serving metric endpoints, where p99 should
reflect *current* behaviour but request counters must never reset.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Sequence

import numpy as np

DEFAULT_PERCENTILES = (50.0, 95.0, 99.0)


class LatencyTracker:
    """Streaming latency statistics: count, mean, and windowed percentiles."""

    def __init__(self, window: int = 8192):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.window = int(window)
        self._buffer = np.zeros(self.window, dtype=np.float64)
        self._next = 0
        self._filled = 0
        self._count = 0
        self._total = 0.0
        self._max = 0.0
        self._lock = threading.Lock()

    def observe(self, seconds: float) -> None:
        """Record one duration (in seconds)."""
        value = float(seconds)
        with self._lock:
            self._buffer[self._next] = value
            self._next = (self._next + 1) % self.window
            self._filled = min(self._filled + 1, self.window)
            self._count += 1
            self._total += value
            if value > self._max:
                self._max = value

    # ------------------------------------------------------------------ #
    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def _snapshot(self) -> np.ndarray:
        with self._lock:
            return self._buffer[: self._filled].copy()

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0–100) over the current window, in seconds."""
        values = self._snapshot()
        if values.size == 0:
            return 0.0
        return float(np.percentile(values, q))

    def percentiles(self, qs: Sequence[float] = DEFAULT_PERCENTILES) -> Dict[str, float]:
        values = self._snapshot()
        if values.size == 0:
            return {f"p{q:g}": 0.0 for q in qs}
        return {f"p{q:g}": float(np.percentile(values, q)) for q in qs}

    def summary(self, unit: str = "s") -> Dict[str, float]:
        """Aggregate view: lifetime count/mean/max plus windowed percentiles.

        ``unit`` is ``"s"`` or ``"ms"``; durations are scaled accordingly so
        the ``/metrics`` endpoint can report milliseconds directly.
        """
        scale = {"s": 1.0, "ms": 1e3}[unit]
        with self._lock:
            count, total, peak = self._count, self._total, self._max
            values = self._buffer[: self._filled].copy()
        out = {
            "count": float(count),
            "mean": scale * (total / count if count else 0.0),
            "max": scale * peak,
        }
        for q in DEFAULT_PERCENTILES:
            out[f"p{q:g}"] = scale * (float(np.percentile(values, q)) if values.size else 0.0)
        return out

    def reset(self) -> None:
        with self._lock:
            self._next = self._filled = self._count = 0
            self._total = self._max = 0.0


class BatchSizeHistogram:
    """Power-of-two histogram of executed micro-batch sizes."""

    def __init__(self, max_batch_size: int = 1024):
        bounds: List[int] = []
        edge = 1
        while edge < max_batch_size:
            bounds.append(edge)
            edge *= 2
        bounds.append(max_batch_size)
        self.bounds = bounds                       # upper edges, inclusive
        self._counts = [0] * (len(bounds) + 1)     # final slot: > max_batch_size
        self._samples_total = 0
        self._batches_total = 0
        self._lock = threading.Lock()

    def observe(self, batch_size: int) -> None:
        size = int(batch_size)
        if size <= 0:
            raise ValueError(f"batch_size must be positive, got {size}")
        slot = len(self.bounds)
        for i, edge in enumerate(self.bounds):
            if size <= edge:
                slot = i
                break
        with self._lock:
            self._counts[slot] += 1
            self._batches_total += 1
            self._samples_total += size

    @property
    def batches(self) -> int:
        with self._lock:
            return self._batches_total

    @property
    def samples(self) -> int:
        with self._lock:
            return self._samples_total

    def mean_batch_size(self) -> float:
        with self._lock:
            return self._samples_total / self._batches_total if self._batches_total else 0.0

    def as_dict(self) -> Dict[str, int]:
        """Bucket label → count, e.g. ``{"<=1": 4, "<=2": 0, ..., ">32": 0}``."""
        with self._lock:
            counts = list(self._counts)
        out = {f"<={edge}": counts[i] for i, edge in enumerate(self.bounds)}
        out[f">{self.bounds[-1]}"] = counts[-1]
        return out


__all__ = ["LatencyTracker", "BatchSizeHistogram", "DEFAULT_PERCENTILES"]
