"""Performance accounting: shape tracing, FLOPs, roofline model, wall-clock
timers, and per-op counters read from the execution backend."""

from repro.profiling.counters import (
    OpCount,
    count_ops,
    counted_flops,
    op_counters,
    reset_op_counters,
)
from repro.profiling.latency import BatchSizeHistogram, LatencyTracker
from repro.profiling.pipeline import PipelineStats, instrument
from repro.profiling.tracer import ModuleTrace, trace_shapes
from repro.profiling.flops import (
    BYTES_PER_ELEMENT,
    LayerCost,
    conv2d_cost,
    count_model_flops,
    count_parameters,
    factorized_conv2d_cost,
    factorized_linear_cost,
    linear_cost,
    model_layer_costs,
)
from repro.profiling.roofline import (
    A100,
    CPU,
    DEVICES,
    DeviceSpec,
    T4,
    V100,
    get_device,
    predict_iteration_time,
    predict_layer_times,
    predict_model_time,
)
from repro.profiling.timer import time_callable, time_forward, time_training_iteration

__all__ = [
    "OpCount",
    "count_ops",
    "counted_flops",
    "op_counters",
    "reset_op_counters",
    "BatchSizeHistogram",
    "LatencyTracker",
    "PipelineStats",
    "instrument",
    "ModuleTrace",
    "trace_shapes",
    "BYTES_PER_ELEMENT",
    "LayerCost",
    "conv2d_cost",
    "count_model_flops",
    "count_parameters",
    "factorized_conv2d_cost",
    "factorized_linear_cost",
    "linear_cost",
    "model_layer_costs",
    "A100",
    "CPU",
    "DEVICES",
    "DeviceSpec",
    "T4",
    "V100",
    "get_device",
    "predict_iteration_time",
    "predict_layer_times",
    "predict_model_time",
    "time_callable",
    "time_forward",
    "time_training_iteration",
]
