"""Wall-clock timing helpers for layer/model profiling.

Mirrors the paper's benchmarking protocol (Section 4.3): run ``iterations + 1``
iterations, discard the first (warm-up / allocation effects), and average the
rest.  Used by Cuttlefish's Algorithm 2 when ``profile_mode="wallclock"`` and
by the benchmark harnesses.
"""

from __future__ import annotations

import time
from typing import Callable, List

import numpy as np

from repro import nn
from repro.tensor import Tensor, functional as F, no_grad


def time_callable(fn: Callable[[], None], iterations: int = 5, discard_first: bool = True) -> float:
    """Average wall-clock seconds per call of ``fn``."""
    times: List[float] = []
    total = iterations + (1 if discard_first else 0)
    for _ in range(total):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    if discard_first and len(times) > 1:
        times = times[1:]
    return float(np.mean(times))


def time_forward(model: nn.Module, example_input, iterations: int = 5, forward_fn=None) -> float:
    """Average forward-pass wall-clock time (graph-free, under ``no_grad``)."""
    model.eval()
    def run():
        with no_grad():
            if forward_fn is not None:
                forward_fn(model, example_input)
            else:
                model(example_input)
    return time_callable(run, iterations=iterations)


def time_training_iteration(model: nn.Module, example_input, labels, iterations: int = 5,
                            loss_fn=None) -> float:
    """Average forward+backward wall-clock time of one training iteration.

    This is the quantity Algorithm 2 measures per layer stack: it includes the
    full backward pass so that memory-bound layers are penalised realistically.
    """
    model.train()

    def run():
        model.zero_grad()
        if loss_fn is not None:
            loss = loss_fn(model, (example_input, labels))
        else:
            logits = model(example_input)
            loss = F.cross_entropy(logits, labels)
        loss.backward()

    return time_callable(run, iterations=iterations)
