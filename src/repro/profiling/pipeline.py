"""Input-pipeline observability: stall-time vs compute-time accounting.

The co-design question the streaming pipeline answers is "does the training
step wait on data, or does data wait on the training step?".
:class:`PipelineStats` accumulates exactly that split:

* **stall** — wall time the consumer spent blocked inside ``next(batch)``,
  i.e. the input pipeline was the bottleneck;
* **compute** — wall time between receiving a batch and asking for the next
  one, i.e. the model was the bottleneck.

``Trainer`` keeps one per epoch (reported in the epoch logs) and one
cumulative; benchmarks wrap raw loaders with :func:`instrument` to measure
loader-only throughput.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator


@dataclass
class PipelineStats:
    """Stall/compute/throughput counters for one batch stream consumer."""

    stall_seconds: float = 0.0
    compute_seconds: float = 0.0
    batches: int = 0
    samples: int = 0
    extra: Dict[str, float] = field(default_factory=dict)

    def observe_stall(self, seconds: float) -> None:
        self.stall_seconds += seconds
        self.batches += 1

    def observe_compute(self, seconds: float, samples: int = 0) -> None:
        self.compute_seconds += seconds
        self.samples += samples

    def merge(self, other: "PipelineStats") -> None:
        self.stall_seconds += other.stall_seconds
        self.compute_seconds += other.compute_seconds
        self.batches += other.batches
        self.samples += other.samples

    @property
    def total_seconds(self) -> float:
        return self.stall_seconds + self.compute_seconds

    @property
    def samples_per_sec(self) -> float:
        total = self.total_seconds
        return self.samples / total if total > 0 else 0.0

    @property
    def stall_fraction(self) -> float:
        total = self.total_seconds
        return self.stall_seconds / total if total > 0 else 0.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "stall_seconds": self.stall_seconds,
            "compute_seconds": self.compute_seconds,
            "stall_fraction": self.stall_fraction,
            "batches": self.batches,
            "samples": self.samples,
            "samples_per_sec": self.samples_per_sec,
            **self.extra,
        }

    def describe(self) -> str:
        return (f"stall={self.stall_seconds:.3f}s compute={self.compute_seconds:.3f}s "
                f"(stall {100 * self.stall_fraction:.1f}%) "
                f"{self.samples_per_sec:.1f} samples/s")


def instrument(stream: Iterable, stats: PipelineStats) -> Iterator:
    """Yield from ``stream``, attributing blocked time to ``stats`` as stall.

    Time between yields (the consumer's work) counts as compute; the first
    field of each batch provides the sample count when it has a length.
    """
    iterator = iter(stream)
    while True:
        requested = time.perf_counter()
        try:
            batch = next(iterator)
        except StopIteration:
            return
        delivered = time.perf_counter()
        stats.observe_stall(delivered - requested)
        yield batch
        first = batch[0] if isinstance(batch, tuple) and batch else batch
        stats.observe_compute(time.perf_counter() - delivered,
                              samples=len(first) if hasattr(first, "__len__") else 0)


__all__ = ["PipelineStats", "instrument"]
