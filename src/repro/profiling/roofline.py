"""Roofline-style device cost model.

The paper's key systems argument (Section 3.5) is that factorizing a layer
only pays off when the layer's *arithmetic intensity* (FLOPs per byte) is high
enough for the GPU to be compute bound; early CNN layers are memory bound, so
halving their FLOPs barely changes their runtime.  We reproduce that argument
with a classical roofline model:

    time(layer) = max(flops / peak_flops, bytes / memory_bandwidth) + kernel_overhead

Device presets approximate the accelerators used in the paper (V100, T4,
A100) plus a generic CPU.  The model is used for two purposes:

* predicting per-stack speedups in Cuttlefish's K-profiling when
  ``profile_mode="roofline"`` (deterministic and hardware independent);
* regenerating the per-layer timing figures (Figure 4, Figure 6) at paper
  scale, where actually running the full-size networks on CPU would be
  prohibitively slow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro import nn
from repro.profiling.flops import LayerCost, model_layer_costs


@dataclass(frozen=True)
class DeviceSpec:
    """Peak throughput / bandwidth / per-kernel overhead / utilisation model of a device.

    Besides the classical roofline terms, the model includes a *utilisation*
    factor for GEMM-shaped work: a layer whose GEMM N (output channels /
    features) or K (reduction length) dimension is small cannot keep the
    device's compute units busy, so it only reaches a fraction of peak.  This
    is what makes factorizing early CNN stacks unprofitable in the paper —
    the "thin" rank-r convolution has a tiny N — and it is essential for
    reproducing Figure 4's per-stack speedups.
    """

    name: str
    peak_flops: float           # FLOP/s
    memory_bandwidth: float     # bytes/s
    kernel_overhead: float      # seconds per launched kernel
    gemm_n_saturation: int = 64   # N below this under-utilises the device
    gemm_k_saturation: int = 64   # K below this under-utilises the device

    def gemm_efficiency(self, cost: LayerCost) -> float:
        """Fraction of peak compute this layer's GEMM shape can achieve."""
        if cost.gemm_n <= 0 or cost.gemm_k <= 0:
            return 1.0
        n_eff = min(1.0, cost.gemm_n / self.gemm_n_saturation)
        k_eff = min(1.0, cost.gemm_k / self.gemm_k_saturation)
        return max(n_eff * k_eff, 1e-3)

    def layer_time(self, cost: LayerCost, kernels: int = 1) -> float:
        """Roofline execution time of one layer."""
        efficiency = self.gemm_efficiency(cost)
        compute_time = cost.flops / (self.peak_flops * efficiency)
        memory_time = cost.bytes_accessed / self.memory_bandwidth
        return max(compute_time, memory_time) + kernels * self.kernel_overhead


# Published spec-sheet numbers (FP32), rounded; overheads calibrated to the
# few-microsecond kernel launch latency of CUDA.
V100 = DeviceSpec("V100", peak_flops=14e12, memory_bandwidth=900e9, kernel_overhead=5e-6)
T4 = DeviceSpec("T4", peak_flops=8.1e12, memory_bandwidth=300e9, kernel_overhead=5e-6)
A100 = DeviceSpec("A100", peak_flops=19.5e12, memory_bandwidth=1555e9, kernel_overhead=5e-6)
CPU = DeviceSpec("CPU", peak_flops=5e10, memory_bandwidth=2e10, kernel_overhead=2e-6,
                 gemm_n_saturation=8, gemm_k_saturation=8)

DEVICES: Dict[str, DeviceSpec] = {"v100": V100, "t4": T4, "a100": A100, "cpu": CPU}


def get_device(name: str) -> DeviceSpec:
    key = name.lower()
    if key not in DEVICES:
        raise KeyError(f"unknown device {name!r}; available: {sorted(DEVICES)}")
    return DEVICES[key]


def predict_layer_times(model: nn.Module, example_input, device: DeviceSpec = V100,
                        forward_fn=None, batch_scale: float = 1.0) -> Dict[str, float]:
    """Predicted per-layer forward time (seconds) under the roofline model.

    ``batch_scale`` rescales costs as if the batch were that many times larger
    than the traced example (used to evaluate paper-scale batch sizes from a
    cheap small-batch trace).
    """
    from repro.profiling.flops import layer_cost_pieces
    from repro.profiling.tracer import trace_shapes

    traces = trace_shapes(model, example_input, forward_fn=forward_fn)
    times: Dict[str, float] = {}
    for name, module in model.named_modules():
        if not name or name not in traces:
            continue
        pieces = layer_cost_pieces(module, traces[name])
        if not pieces:
            continue
        total = 0.0
        for piece in pieces:
            if batch_scale != 1.0:
                piece = piece.scale_batch(batch_scale)
            # Each GEMM piece is one kernel launch.
            total += device.layer_time(piece, kernels=1)
        times[name] = total
    return times


def predict_model_time(model: nn.Module, example_input, device: DeviceSpec = V100,
                       forward_fn=None, batch_scale: float = 1.0) -> float:
    """Predicted total forward time (seconds) of the model on ``device``."""
    return sum(predict_layer_times(model, example_input, device, forward_fn, batch_scale).values())


def predict_iteration_time(model: nn.Module, example_input, device: DeviceSpec = V100,
                           forward_fn=None, backward_multiplier: float = 2.0,
                           batch_scale: float = 1.0) -> float:
    """Predicted forward+backward time; backward ≈ 2× forward, as the paper assumes."""
    forward = predict_model_time(model, example_input, device, forward_fn, batch_scale)
    return forward * (1.0 + backward_multiplier)
