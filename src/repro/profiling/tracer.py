"""Shape tracer: record per-module input/output shapes from a single forward pass.

FLOPs counting and the roofline cost model both need to know each layer's
activation shapes.  Rather than re-deriving shapes analytically for every
architecture, :func:`trace_shapes` runs one forward pass with every leaf
module's ``forward`` temporarily wrapped to record the shapes it sees.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from repro import nn
from repro.tensor import Tensor, no_grad


@dataclass
class ModuleTrace:
    """Shapes observed at one module during tracing."""

    module_type: str
    input_shape: Tuple[int, ...]
    output_shape: Tuple[int, ...]


def trace_shapes(model: nn.Module, example_input, forward_fn=None) -> Dict[str, ModuleTrace]:
    """Run ``model`` once on ``example_input`` and record per-module shapes.

    Parameters
    ----------
    model:
        The module tree to trace.
    example_input:
        A numpy array / Tensor (or token id array for text models) accepted by
        ``model.__call__``.
    forward_fn:
        Optional ``forward_fn(model, example_input)`` for models whose call
        signature differs (e.g. BERT with attention masks).

    Returns
    -------
    dict mapping module path → :class:`ModuleTrace`.  Leaf modules (no
    children) are recorded, plus factorized low-rank layers: those may carry a
    BatchNorm child (the extra-BN variant) but are still priced as a single
    two-GEMM unit by the cost model, so they must appear in the trace.
    """
    # Late import: core imports profiling, so profiling cannot import core at
    # module level.
    from repro.core.low_rank_layers import is_low_rank

    traces: Dict[str, ModuleTrace] = {}
    originals = {}

    def _shape_of(value) -> Tuple[int, ...]:
        if isinstance(value, Tensor):
            return tuple(value.shape)
        if isinstance(value, np.ndarray):
            return tuple(value.shape)
        return ()

    for name, module in model.named_modules():
        if not name or (list(module.children()) and not is_low_rank(module)):
            continue

        def make_wrapper(mod, path, original):
            def wrapped(*args, **kwargs):
                out = original(*args, **kwargs)
                in_shape = _shape_of(args[0]) if args else ()
                traces[path] = ModuleTrace(type(mod).__name__, in_shape, _shape_of(out))
                return out
            return wrapped

        originals[name] = (module, module.forward)
        object.__setattr__(module, "forward", make_wrapper(module, name, module.forward))

    try:
        with no_grad():
            was_training = model.training
            model.eval()
            if forward_fn is not None:
                forward_fn(model, example_input)
            else:
                model(example_input)
            model.train(was_training)
    finally:
        for module, original in originals.values():
            object.__setattr__(module, "forward", original)
            # Remove the instance attribute so the class method is used again.
            if "forward" in module.__dict__:
                del module.__dict__["forward"]
    return traces
