"""FLOPs and parameter counting for full-rank and factorized layers.

The paper reports inference FLOPs (Tables 2 and 3) and argues about *training*
speedups via arithmetic intensity (Section 3.5).  This module provides exact
multiply-accumulate counts per layer from traced activation shapes, plus the
closed-form expressions for factorized layers so the benefit of a given rank
can be evaluated without building the factorized model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro import nn
from repro.profiling.tracer import ModuleTrace, trace_shapes


@dataclass
class LayerCost:
    """FLOPs (multiply-accumulates ×2) and memory traffic (bytes) for one layer.

    Parameter bytes and activation bytes are tracked separately so a cost
    measured at a small tracing batch can be re-scaled to the paper's batch
    size (activations scale with the batch, parameters do not).
    """

    flops: float
    param_bytes: float
    activation_bytes: float
    params: int
    # Effective GEMM dimensions of the layer (0 for non-GEMM layers): a
    # convolution lowered by im2col is a GEMM with M = batch·out_h·out_w,
    # N = out_channels, K = in_channels·k².  Devices use these to model how
    # well a thin layer can utilise the hardware.
    gemm_m: int = 0
    gemm_n: int = 0
    gemm_k: int = 0

    @property
    def bytes_accessed(self) -> float:
        return self.param_bytes + self.activation_bytes

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of data moved — the quantity driving GPU utilisation."""
        return self.flops / max(self.bytes_accessed, 1.0)

    def scale_batch(self, factor: float) -> "LayerCost":
        """Cost of the same layer at ``factor ×`` the traced batch size."""
        return LayerCost(
            flops=self.flops * factor,
            param_bytes=self.param_bytes,
            activation_bytes=self.activation_bytes * factor,
            params=self.params,
            gemm_m=int(self.gemm_m * factor),
            gemm_n=self.gemm_n,
            gemm_k=self.gemm_k,
        )

    def __add__(self, other: "LayerCost") -> "LayerCost":
        """Aggregate two costs (e.g. the U and Vᵀ halves of a factorized layer).

        The combined GEMM dimensions keep the *narrowest* N/K of the two
        pieces, which is what limits utilisation of the fused sequence.
        """
        def _combine(a: int, b: int) -> int:
            positives = [v for v in (a, b) if v > 0]
            return min(positives) if positives else 0

        return LayerCost(
            self.flops + other.flops,
            self.param_bytes + other.param_bytes,
            self.activation_bytes + other.activation_bytes,
            self.params + other.params,
            gemm_m=max(self.gemm_m, other.gemm_m),
            gemm_n=_combine(self.gemm_n, other.gemm_n),
            gemm_k=_combine(self.gemm_k, other.gemm_k),
        )


BYTES_PER_ELEMENT = 4.0  # FP32


def conv2d_cost(batch: int, in_channels: int, out_channels: int, kernel: int,
                out_h: int, out_w: int) -> LayerCost:
    """Cost of a standard convolution producing a (batch, out_c, out_h, out_w) map."""
    macs = batch * out_channels * in_channels * kernel * kernel * out_h * out_w
    params = out_channels * in_channels * kernel * kernel
    activations = batch * (in_channels + out_channels) * out_h * out_w
    return LayerCost(flops=2.0 * macs, param_bytes=params * BYTES_PER_ELEMENT,
                     activation_bytes=activations * BYTES_PER_ELEMENT, params=params,
                     gemm_m=batch * out_h * out_w, gemm_n=out_channels,
                     gemm_k=in_channels * kernel * kernel)


def factorized_conv2d_cost(batch: int, in_channels: int, out_channels: int, kernel: int,
                           rank: int, out_h: int, out_w: int) -> LayerCost:
    """Cost of the factorized pair: U (rank filters of size k×k) then 1×1 conv Vᵀ."""
    u = conv2d_cost(batch, in_channels, rank, kernel, out_h, out_w)
    v = conv2d_cost(batch, rank, out_channels, 1, out_h, out_w)
    return u + v


def linear_cost(batch_tokens: int, in_features: int, out_features: int) -> LayerCost:
    macs = batch_tokens * in_features * out_features
    params = in_features * out_features
    activations = batch_tokens * (in_features + out_features)
    return LayerCost(2.0 * macs, params * BYTES_PER_ELEMENT,
                     activations * BYTES_PER_ELEMENT, params,
                     gemm_m=batch_tokens, gemm_n=out_features, gemm_k=in_features)


def factorized_linear_cost(batch_tokens: int, in_features: int, out_features: int, rank: int) -> LayerCost:
    u = linear_cost(batch_tokens, in_features, rank)
    v = linear_cost(batch_tokens, rank, out_features)
    return u + v


def layer_cost_pieces(module: nn.Module, trace: ModuleTrace) -> Optional[list]:
    """Cost of a traced module as a list of GEMM pieces (factorized layers → two).

    Timing models should price each piece with its own utilisation; reporting
    code can simply sum the pieces.
    """
    from repro.core.low_rank_layers import LowRankConv2d, LowRankLinear

    if isinstance(module, LowRankConv2d):
        n, _, out_h, out_w = trace.output_shape
        kernel = module.kernel_size[0]
        return [
            conv2d_cost(n, module.in_channels, module.rank, kernel, out_h, out_w),
            conv2d_cost(n, module.rank, module.out_channels, 1, out_h, out_w),
        ]
    if isinstance(module, LowRankLinear):
        tokens = int(np.prod(trace.input_shape[:-1]))
        return [
            linear_cost(tokens, module.in_features, module.rank),
            linear_cost(tokens, module.rank, module.out_features),
        ]
    single = _cost_from_trace(module, trace)
    return None if single is None else [single]


def _cost_from_trace(module: nn.Module, trace: ModuleTrace) -> Optional[LayerCost]:
    """Exact cost of a traced leaf module, or ``None`` for cost-free layers."""
    # Import here to avoid a circular import (core imports profiling).
    from repro.core.low_rank_layers import LowRankConv2d, LowRankLinear

    if isinstance(module, LowRankConv2d):
        n, _, out_h, out_w = trace.output_shape
        return factorized_conv2d_cost(n, module.in_channels, module.out_channels,
                                      module.kernel_size[0], module.rank, out_h, out_w)
    if isinstance(module, LowRankLinear):
        tokens = int(np.prod(trace.input_shape[:-1]))
        return factorized_linear_cost(tokens, module.in_features, module.out_features, module.rank)
    if isinstance(module, nn.Conv2d):
        n, _, out_h, out_w = trace.output_shape
        return conv2d_cost(n, module.in_channels, module.out_channels,
                           module.kernel_size[0], out_h, out_w)
    if isinstance(module, nn.Linear):
        tokens = int(np.prod(trace.input_shape[:-1]))
        return linear_cost(tokens, module.in_features, module.out_features)
    if isinstance(module, (nn.BatchNorm2d, nn.BatchNorm1d, nn.LayerNorm)):
        elements = float(np.prod(trace.output_shape))
        return LayerCost(4.0 * elements,
                         sum(p.size for p in module.parameters()) * BYTES_PER_ELEMENT,
                         4.0 * elements * BYTES_PER_ELEMENT,
                         sum(p.size for p in module.parameters()))
    return None


def model_layer_costs(model: nn.Module, example_input, forward_fn=None,
                      batch_scale: float = 1.0) -> Dict[str, LayerCost]:
    """Per-layer costs of every compute-bearing leaf module in ``model``.

    ``batch_scale`` rescales every cost as if the batch were ``batch_scale ×``
    the traced batch — this lets paper-scale batch sizes (e.g. 1024) be costed
    from a cheap small-batch trace.
    """
    traces = trace_shapes(model, example_input, forward_fn=forward_fn)
    costs: Dict[str, LayerCost] = {}
    for name, module in model.named_modules():
        if not name or name not in traces:
            continue
        cost = _cost_from_trace(module, traces[name])
        if cost is not None:
            costs[name] = cost.scale_batch(batch_scale) if batch_scale != 1.0 else cost
    return costs


def count_model_flops(model: nn.Module, example_input, forward_fn=None) -> float:
    """Total forward FLOPs of a model on the example input."""
    return sum(cost.flops for cost in model_layer_costs(model, example_input, forward_fn).values())


def count_parameters(model: nn.Module, trainable_only: bool = True) -> int:
    """Number of scalar parameters (mirrors the paper's "# Params (M)" columns)."""
    return model.num_parameters(trainable_only=trainable_only)
