"""Stable rank estimation (Section 3.3 of the paper).

The *stable rank* of a matrix with singular values σ₁ ≥ σ₂ ≥ … is

    stable_rank(Σ) = (Σᵢ σᵢ²) / σ₁²  =  ‖W‖_F² / ‖W‖₂²

It is a smooth proxy for the true rank that ignores tiny singular values and
needs no extra hyper-parameters.  The paper refines it in two ways:

* **scaled stable rank** — multiply by ξ = full_rank(W⁰) / stable_rank(Σ⁰),
  the ratio measured at initialisation, so that a freshly initialised matrix
  is treated as (approximately) full rank.  Without this correction the rank
  estimates for large tasks (ImageNet, transformers) are too aggressive
  (Tables 15/16).
* **accumulative rank** — the smallest r such that the top-r singular values
  hold a fraction ``p`` of the total singular mass; §C.2 proposes
  ``max(scaled stable rank, accumulative_rank(p=0.8))`` for transformer
  weights, which are far less redundant than CNN weights.

Convolution weights of shape (out, in, kh, kw) are unrolled to the 2-D matrix
of shape (in·kh·kw, out) the paper factorizes.
"""

from __future__ import annotations

from typing import Optional

import numpy as np
from scipy import linalg

from repro import nn


def weight_to_matrix(module: nn.Module) -> np.ndarray:
    """Return the 2-D matrix whose rank Cuttlefish estimates for ``module``.

    * ``Linear`` → the (out, in) weight as is.
    * ``Conv2d`` → the unrolled (in·kh·kw, out) matrix, each column one
      vectorised filter (Section 2.1 of the paper).
    """
    from repro.core.low_rank_layers import LowRankConv2d, LowRankLinear  # local import: avoid cycle

    if isinstance(module, (LowRankLinear, LowRankConv2d)):
        return module.composed_weight()
    if isinstance(module, nn.Conv2d):
        out_c, in_c, kh, kw = module.weight.shape
        return module.weight.data.transpose(1, 2, 3, 0).reshape(in_c * kh * kw, out_c)
    if isinstance(module, nn.Linear):
        return module.weight.data
    raise TypeError(f"cannot extract a weight matrix from {type(module).__name__}")


def full_rank_of(module_or_matrix) -> int:
    """min(m, n) of the layer's unrolled weight matrix."""
    matrix = module_or_matrix if isinstance(module_or_matrix, np.ndarray) else weight_to_matrix(module_or_matrix)
    return int(min(matrix.shape))


def singular_values(matrix: np.ndarray) -> np.ndarray:
    """Singular values in descending order (no singular vectors — cheap)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("expected a 2-D matrix")
    return linalg.svdvals(matrix)


def stable_rank(sigma: np.ndarray) -> float:
    """Stable rank from a vector of singular values.

    Computed on singular values normalised by the largest one, so that
    denormal or enormous spectra do not overflow/underflow the squares.
    """
    sigma = np.asarray(sigma, dtype=np.float64)
    if sigma.size == 0:
        return 0.0
    top = float(sigma.max())
    if top <= 0.0 or not np.isfinite(top):
        return 0.0
    normalised = sigma / top
    return float(np.sum(normalised ** 2))


def scaled_stable_rank(sigma: np.ndarray, xi: float, cap: Optional[int] = None) -> float:
    """Stable rank scaled by the initialisation ratio ξ, optionally capped at full rank."""
    value = xi * stable_rank(sigma)
    if cap is not None:
        value = min(value, float(cap))
    return value


def initial_scale_factor(sigma0: np.ndarray, full_rank: int) -> float:
    """ξ = full rank / stable rank at initialisation (Section 3.3)."""
    sr0 = stable_rank(sigma0)
    if sr0 <= 0:
        return 1.0
    return float(full_rank) / sr0


def accumulative_rank(sigma: np.ndarray, p: float = 0.8) -> int:
    """Smallest r such that the top-r singular values hold a fraction ``p`` of the mass."""
    sigma = np.sort(np.asarray(sigma, dtype=np.float64))[::-1]
    total = sigma.sum()
    if total <= 0:
        return 0
    cumulative = np.cumsum(sigma) / total
    return int(np.searchsorted(cumulative, p) + 1)


def module_stable_rank(module: nn.Module) -> float:
    """Stable rank of a layer's unrolled weight matrix."""
    return stable_rank(singular_values(weight_to_matrix(module)))


def module_rank_estimate(
    module: nn.Module,
    xi: float = 1.0,
    mode: str = "scaled_stable",
    accumulative_p: float = 0.8,
) -> float:
    """Estimate a layer's effective rank under one of the paper's metrics.

    ``mode`` is one of:

    * ``"stable"`` — vanilla stable rank;
    * ``"scaled_stable"`` — scaled stable rank (the Cuttlefish default);
    * ``"accumulative"`` — accumulative rank at threshold ``accumulative_p``;
    * ``"scaled_stable_or_accumulative"`` — the §C.2 transformer rule,
      ``max(scaled stable rank, accumulative rank)``.
    """
    matrix = weight_to_matrix(module)
    sigma = singular_values(matrix)
    cap = full_rank_of(matrix)
    if mode == "stable":
        return min(stable_rank(sigma), float(cap))
    if mode == "scaled_stable":
        return scaled_stable_rank(sigma, xi, cap=cap)
    if mode == "accumulative":
        return float(accumulative_rank(sigma, p=accumulative_p))
    if mode == "scaled_stable_or_accumulative":
        return min(float(cap), max(scaled_stable_rank(sigma, xi, cap=cap),
                                   float(accumulative_rank(sigma, p=accumulative_p))))
    raise KeyError(f"unknown rank estimation mode {mode!r}")


def singular_value_cdf(matrix: np.ndarray) -> np.ndarray:
    """Cumulative fraction of singular mass vs dimension fraction (Figure 9)."""
    sigma = singular_values(matrix)
    total = sigma.sum()
    if total <= 0:
        return np.zeros_like(sigma)
    return np.cumsum(sigma) / total
