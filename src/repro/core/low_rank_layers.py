"""Factorized (low-rank) replacements for Linear and Conv2d layers.

A full-rank ``Linear(in, out)`` becomes ``LowRankLinear``: two chained linear
maps of shapes (in → r) and (r → out).  A full-rank ``Conv2d`` becomes
``LowRankConv2d``: a "thin" convolution with r filters followed by a 1×1
convolution that projects back to the original output channels, matching the
construction in Section 2.1 of the paper.

Both layers optionally insert an extra BatchNorm between the two factors (the
MobileNet-inspired trick from Section 4.1, ablated in Table 5) and both expose
``composed_weight()`` so stable-rank tracking and Frobenius decay can operate
on the product U·Vᵀ.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import nn
from repro.nn.module import Parameter
from repro.tensor import Tensor, functional as F


class LowRankLinear(nn.Module):
    """Rank-``r`` factorization of a dense layer: ``y = (x U) Vᵀ + b``."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rank: int,
        bias: bool = True,
        extra_bn: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        rank = int(max(1, min(rank, in_features, out_features)))
        self.in_features = in_features
        self.out_features = out_features
        self.rank = rank
        self.extra_bn = extra_bn
        # Stored in "math" orientation: U is (in, r), Vt is (r, out).
        u, vt = nn.init.spectral_init((in_features, out_features), rank, rng=rng)
        self.u = Parameter(u)
        self.vt = Parameter(vt)
        self.bias = Parameter(np.zeros(out_features, dtype=np.float32)) if bias else None
        self.bn = nn.BatchNorm1d(rank) if extra_bn else None

    @classmethod
    def from_factors(cls, u: np.ndarray, vt: np.ndarray, bias: Optional[np.ndarray] = None,
                     extra_bn: bool = False) -> "LowRankLinear":
        """Build a factorized layer from explicit U (in, r) and Vᵀ (r, out) factors."""
        in_features, rank = u.shape
        out_features = vt.shape[1]
        layer = cls(in_features, out_features, rank, bias=bias is not None, extra_bn=extra_bn)
        layer.u.data = np.asarray(u, dtype=np.float32).copy()
        layer.vt.data = np.asarray(vt, dtype=np.float32).copy()
        if bias is not None:
            layer.bias.data = np.asarray(bias, dtype=np.float32).copy()
        return layer

    def forward(self, x: Tensor) -> Tensor:
        if not isinstance(x, Tensor):
            x = Tensor(x)
        hidden = x.matmul(self.u)
        if self.bn is not None:
            if hidden.ndim == 2:
                hidden = self.bn(hidden)
            else:
                flat = hidden.reshape((-1, self.rank))
                hidden = self.bn(flat).reshape(hidden.shape)
        out = hidden.matmul(self.vt)
        if self.bias is not None:
            out = out + self.bias
        return out

    def composed_weight(self) -> np.ndarray:
        """The effective full matrix W = U Vᵀ of shape (in, out)."""
        return self.u.data @ self.vt.data

    def factor_parameters(self) -> Tuple[Parameter, Parameter]:
        return self.u, self.vt

    def export_factors(self) -> "OrderedDict[str, np.ndarray]":
        """The factorized weights in export orientation: U (in, r), Vᵀ (r, out).

        This is the compressed representation written into serving artifacts —
        the factors stay separate so the served model keeps the reduced
        (in·r + r·out) FLOP path instead of the dense in·out one.
        """
        from collections import OrderedDict

        factors = OrderedDict(u=self.u.data.copy(), vt=self.vt.data.copy())
        if self.bias is not None:
            factors["bias"] = self.bias.data.copy()
        return factors

    def to_dense(self) -> "nn.Linear":
        """Merge the factors into an equivalent full-rank ``nn.Linear``.

        The dense layer computes x (U Vᵀ) + b in one matmul — numerically
        close to but not bit-identical with the two-matmul factorized path.
        Refuses to merge the extra-BatchNorm variant: the normalisation
        between the factors is not a linear map of the composed weight.
        """
        if self.bn is not None:
            raise ValueError("cannot merge a LowRankLinear with extra_bn=True into a dense layer")
        dense = nn.Linear(self.in_features, self.out_features, bias=self.bias is not None)
        dense.weight.data = self.composed_weight().T.astype(np.float32).copy()
        if self.bias is not None:
            dense.bias.data = self.bias.data.copy()
        return dense

    def extra_repr(self) -> str:
        return (f"in_features={self.in_features}, out_features={self.out_features}, "
                f"rank={self.rank}, extra_bn={self.extra_bn}")


class LowRankConv2d(nn.Module):
    """Rank-``r`` factorization of a convolution: thin k×k conv then 1×1 conv."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        rank: int,
        stride=1,
        padding=0,
        bias: bool = True,
        extra_bn: bool = False,
        rng: Optional[np.random.Generator] = None,
    ):
        super().__init__()
        kh, kw = (kernel_size, kernel_size) if isinstance(kernel_size, int) else kernel_size
        full_rank = min(in_channels * kh * kw, out_channels)
        rank = int(max(1, min(rank, full_rank)))
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.rank = rank
        self.extra_bn = extra_bn

        u, vt = nn.init.spectral_init((in_channels * kh * kw, out_channels), rank, rng=rng)
        # U (in·kh·kw, r) reshaped to a conv weight (r, in, kh, kw); Vᵀ (r, out) as 1×1 conv (out, r, 1, 1).
        self.u_weight = Parameter(u.reshape(in_channels, kh, kw, rank).transpose(3, 0, 1, 2).copy())
        self.v_weight = Parameter(vt.T.reshape(out_channels, rank, 1, 1).copy())
        self.bias = Parameter(np.zeros(out_channels, dtype=np.float32)) if bias else None
        self.bn = nn.BatchNorm2d(rank) if extra_bn else None

    @classmethod
    def from_factors(cls, reference: nn.Conv2d, u: np.ndarray, vt: np.ndarray,
                     extra_bn: bool = False) -> "LowRankConv2d":
        """Build a factorized conv from U (in·kh·kw, r), Vᵀ (r, out) and a reference layer."""
        out_c, in_c, kh, kw = reference.weight.shape
        rank = u.shape[1]
        layer = cls(in_c, out_c, (kh, kw), rank, stride=reference.stride, padding=reference.padding,
                    bias=reference.bias is not None, extra_bn=extra_bn)
        layer.u_weight.data = (
            np.asarray(u, dtype=np.float32).reshape(in_c, kh, kw, rank).transpose(3, 0, 1, 2).copy()
        )
        layer.v_weight.data = np.asarray(vt, dtype=np.float32).T.reshape(out_c, rank, 1, 1).copy()
        if reference.bias is not None:
            layer.bias.data = reference.bias.data.copy()
        return layer

    def forward(self, x: Tensor) -> Tensor:
        hidden = F.conv2d(x, self.u_weight, None, stride=self.stride, padding=self.padding)
        if self.bn is not None:
            hidden = self.bn(hidden)
        out = F.conv2d(hidden, self.v_weight, self.bias, stride=1, padding=0)
        return out

    def composed_weight(self) -> np.ndarray:
        """The effective unrolled matrix U Vᵀ of shape (in·kh·kw, out)."""
        rank = self.rank
        in_c, (kh, kw) = self.in_channels, self.kernel_size
        u = self.u_weight.data.transpose(1, 2, 3, 0).reshape(in_c * kh * kw, rank)
        vt = self.v_weight.data.reshape(self.out_channels, rank).T
        return u @ vt

    def factor_parameters(self) -> Tuple[Parameter, Parameter]:
        return self.u_weight, self.v_weight

    def export_factors(self) -> "OrderedDict[str, np.ndarray]":
        """The factorized conv weights in export form: thin k×k conv + 1×1 conv."""
        from collections import OrderedDict

        factors = OrderedDict(u_weight=self.u_weight.data.copy(),
                              v_weight=self.v_weight.data.copy())
        if self.bias is not None:
            factors["bias"] = self.bias.data.copy()
        return factors

    def to_dense(self) -> "nn.Conv2d":
        """Merge the factor pair into an equivalent full-rank ``nn.Conv2d``."""
        if self.bn is not None:
            raise ValueError("cannot merge a LowRankConv2d with extra_bn=True into a dense layer")
        kh, kw = self.kernel_size
        dense = nn.Conv2d(self.in_channels, self.out_channels, (kh, kw),
                          stride=self.stride, padding=self.padding,
                          bias=self.bias is not None)
        dense.weight.data = (
            self.composed_weight().T.reshape(self.out_channels, self.in_channels, kh, kw)
            .astype(np.float32).copy()
        )
        if self.bias is not None:
            dense.bias.data = self.bias.data.copy()
        return dense

    def extra_repr(self) -> str:
        return (f"{self.in_channels}, {self.out_channels}, kernel_size={self.kernel_size}, "
                f"rank={self.rank}, stride={self.stride}, extra_bn={self.extra_bn}")


def is_low_rank(module: nn.Module) -> bool:
    """True if ``module`` is one of the factorized layer types."""
    return isinstance(module, (LowRankLinear, LowRankConv2d))


def merge_factorized(model: nn.Module) -> int:
    """Replace every low-rank layer in ``model`` by its dense equivalent.

    The inverse of :func:`repro.core.factorize.factorize_model` up to float
    rounding: each U Vᵀ product is materialised as one dense weight.  Used to
    produce the dense baseline a factorized serving artifact is compared
    against.  Returns the number of layers merged; layers using the
    extra-BatchNorm variant raise (see :meth:`LowRankLinear.to_dense`).
    """
    merged = 0
    for path, module in list(model.named_modules()):
        if path and is_low_rank(module):
            model.set_submodule(path, module.to_dense())
            merged += 1
    return merged
