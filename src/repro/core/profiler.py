"""Layer-stack profiling — Algorithm 2 of the paper (determining K).

Factorizing the early stacks of a CNN barely reduces their per-iteration time
because those layers are memory bound (low arithmetic intensity).  Cuttlefish
therefore profiles each *layer stack* (layers sharing weight/input shapes):
it temporarily factorizes the stack at a probe rank ratio ρ̄, measures the
stack's per-iteration time, and keeps the stack full-rank unless

    time(full-rank stack) > υ · time(factorized stack)

which reproduces the per-stack speedups of Figure 4 (≈1.1× for the first
ResNet-18 stack vs ≈2.6× for the last one).

Two measurement back-ends are supported:

* ``"wallclock"`` — run τ forward+backward iterations of each layer in the
  stack on this machine, on inputs of the shapes seen by the real model
  (the paper's protocol, Section 4.3);
* ``"roofline"`` — evaluate the analytical roofline model for a chosen GPU
  spec.  This is deterministic and reproduces the paper's arithmetic-intensity
  argument even on hardware very different from the authors' testbed.
"""

from __future__ import annotations

import contextlib
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro import nn
from repro.core.factorize import factorize_module, would_reduce_parameters
from repro.core.stable_rank import full_rank_of
from repro.profiling.roofline import DeviceSpec, V100, predict_layer_times
from repro.profiling.timer import time_callable
from repro.profiling.tracer import trace_shapes
from repro.tensor import Tensor
from repro.utils import get_logger, get_rng

logger = get_logger("core.profiler")


@dataclass
class StackProfile:
    """Timing result for one layer stack."""

    stack_name: str
    layer_paths: List[str]
    full_rank_time: float
    factorized_time: float

    @property
    def speedup(self) -> float:
        if self.factorized_time <= 0:
            return float("inf")
        return self.full_rank_time / self.factorized_time


@dataclass
class ProfilingResult:
    """Outcome of Algorithm 2: which stacks to factorize and the implied K̂."""

    stack_profiles: List[StackProfile]
    factorize_stacks: List[str]
    skip_stacks: List[str]
    skipped_layer_paths: List[str]
    k_hat: int

    def speedup_table(self) -> Dict[str, float]:
        return {p.stack_name: p.speedup for p in self.stack_profiles}


@contextlib.contextmanager
def _temporarily_factorized(model: nn.Module, layer_paths: Sequence[str], rank_ratio: float):
    """Swap the listed layers for probe factorizations, restore them afterwards."""
    originals: List[Tuple[str, nn.Module]] = []
    try:
        for path in layer_paths:
            module = model.get_submodule(path)
            if not isinstance(module, (nn.Conv2d, nn.Linear)):
                continue
            rank = max(1, int(round(full_rank_of(module) * rank_ratio)))
            if not would_reduce_parameters(module, rank):
                continue
            originals.append((path, module))
            model.set_submodule(path, factorize_module(module, rank))
        yield
    finally:
        for path, module in reversed(originals):
            model.set_submodule(path, module)


def _wallclock_layer_times(model: nn.Module, layer_paths: Sequence[str], example_batch,
                           iterations: int, forward_fn=None) -> Dict[str, float]:
    """Wall-clock forward+backward time of each listed layer on its real input shape."""
    inputs = example_batch[0]
    traces = trace_shapes(model, inputs, forward_fn=forward_fn)
    rng = get_rng(offset=5_150)
    times: Dict[str, float] = {}
    for path in layer_paths:
        if path not in traces:
            times[path] = 0.0
            continue
        shape = traces[path].input_shape
        module = model.get_submodule(path)
        probe = Tensor(rng.standard_normal(shape).astype(np.float32), requires_grad=True)

        def run():
            out = module(probe)
            out.sum().backward()
            probe.grad = None
            module.zero_grad()

        times[path] = time_callable(run, iterations=iterations)
    return times


def _stack_time(model: nn.Module, layer_paths: Sequence[str], example_batch, mode: str,
                iterations: int, device: DeviceSpec, forward_fn=None,
                batch_scale: float = 1.0, backward_multiplier: float = 2.0) -> float:
    """Per-iteration time attributable to the layers of one stack."""
    inputs = example_batch[0]
    if mode == "roofline":
        layer_times = predict_layer_times(model, inputs, device=device, forward_fn=forward_fn,
                                          batch_scale=batch_scale)
        forward = sum(layer_times.get(path, 0.0) for path in layer_paths)
        return forward * (1.0 + backward_multiplier)
    if mode == "wallclock":
        layer_times = _wallclock_layer_times(model, layer_paths, example_batch, iterations,
                                             forward_fn=forward_fn)
        return sum(layer_times.values())
    raise KeyError(f"unknown profiling mode {mode!r}")


def profile_layer_stacks(
    model: nn.Module,
    stack_paths: Dict[str, List[str]],
    example_batch,
    rank_ratio: float = 0.25,
    speedup_threshold: float = 1.5,
    iterations: int = 3,
    mode: str = "roofline",
    device: DeviceSpec = V100,
    loss_fn=None,
    forward_fn=None,
    contiguous_prefix: bool = True,
    batch_scale: float = 1.0,
) -> ProfilingResult:
    """Run Algorithm 2 and decide which stacks stay full-rank.

    Parameters
    ----------
    stack_paths:
        Ordered mapping stack name → module paths, from the model's
        ``layer_stack_paths()``.
    example_batch:
        ``(inputs, labels)`` used for shape tracing / probe iterations.
    rank_ratio:
        The probe rank ratio ρ̄ (paper uses 1/4).
    speedup_threshold:
        υ; a stack is factorized only if its full-rank time exceeds υ × its
        factorized time.
    contiguous_prefix:
        When True (CNN behaviour in the paper), only a *prefix* of stacks may
        stay full rank: once a stack passes the threshold, all deeper stacks
        are factorized as well.  When False each stack is judged independently
        (transformer behaviour).
    batch_scale:
        For ``mode="roofline"``: evaluate the cost model as if the batch were
        this many times larger than the probe batch (the paper profiles at
        batch 1024, which is too large to trace directly on CPU).
    loss_fn:
        Unused by the stack-local measurement; accepted for API symmetry with
        the trainer.
    """
    del loss_fn  # stack-local measurement does not need the training loss
    profiles: List[StackProfile] = []
    for stack_name, layer_paths in stack_paths.items():
        full_time = _stack_time(model, layer_paths, example_batch, mode, iterations, device,
                                forward_fn=forward_fn, batch_scale=batch_scale)
        with _temporarily_factorized(model, layer_paths, rank_ratio):
            factorized_time = _stack_time(model, layer_paths, example_batch, mode, iterations, device,
                                          forward_fn=forward_fn, batch_scale=batch_scale)
        profiles.append(StackProfile(stack_name, list(layer_paths), full_time, factorized_time))
        logger.debug("stack %s: full=%.4g factorized=%.4g speedup=%.2fx",
                     stack_name, full_time, factorized_time, profiles[-1].speedup)

    factorize_stacks: List[str] = []
    skip_stacks: List[str] = []
    passed_before = False
    for profile in profiles:
        passes = profile.speedup >= speedup_threshold
        if contiguous_prefix and passed_before:
            passes = True
        if passes:
            factorize_stacks.append(profile.stack_name)
            passed_before = True
        else:
            skip_stacks.append(profile.stack_name)

    skipped_layer_paths = [
        path for profile in profiles if profile.stack_name in skip_stacks for path in profile.layer_paths
    ]
    # K̂ counts the layers that remain full rank at the top of the network:
    # the always-unfactorized first layer plus every layer in skipped stacks.
    k_hat = 1 + len(skipped_layer_paths)
    return ProfilingResult(
        stack_profiles=profiles,
        factorize_stacks=factorize_stacks,
        skip_stacks=skip_stacks,
        skipped_layer_paths=skipped_layer_paths,
        k_hat=k_hat,
    )
