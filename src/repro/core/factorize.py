"""SVD factorization of trained full-rank layers into low-rank pairs.

Implements the factorization step of Algorithm 1: at the switch epoch Ê, every
selected layer weight W is decomposed as W = Ũ Σ Ṽᵀ and replaced by the pair

    U = Ũ Σ^{1/2}[:, :r],    Vᵀ = Σ^{1/2} Ṽᵀ[:r, :]

(with the necessary reshaping for convolutions), so that U Vᵀ is the best
rank-r approximation of W and the product approximately preserves the layer's
function at the moment of the switch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro import nn
from repro.core.low_rank_layers import LowRankConv2d, LowRankLinear, is_low_rank
from repro.core.stable_rank import full_rank_of, weight_to_matrix
from repro.utils import get_logger

logger = get_logger("core.factorize")


def svd_factorize(matrix: np.ndarray, rank: int) -> Tuple[np.ndarray, np.ndarray]:
    """Best rank-``r`` factorization of ``matrix`` (m, n) into U (m, r) and Vᵀ (r, n)."""
    matrix = np.asarray(matrix, dtype=np.float64)
    rank = int(max(1, min(rank, min(matrix.shape))))
    u, s, vt = np.linalg.svd(matrix, full_matrices=False)
    root = np.sqrt(s[:rank])
    u_factor = (u[:, :rank] * root[None, :]).astype(np.float32)
    v_factor = (root[:, None] * vt[:rank, :]).astype(np.float32)
    return u_factor, v_factor


def reconstruction_error(matrix: np.ndarray, u: np.ndarray, vt: np.ndarray) -> float:
    """Relative Frobenius error ‖W − U Vᵀ‖_F / ‖W‖_F."""
    matrix = np.asarray(matrix, dtype=np.float64)
    approx = u.astype(np.float64) @ vt.astype(np.float64)
    denom = np.linalg.norm(matrix)
    if denom == 0:
        return 0.0
    return float(np.linalg.norm(matrix - approx) / denom)


def factorize_linear(module: nn.Linear, rank: int, extra_bn: bool = False) -> LowRankLinear:
    """Replace a trained Linear layer by its rank-``r`` factorization."""
    weight_matrix = module.weight.data.T          # (in, out)
    u, vt = svd_factorize(weight_matrix, rank)
    bias = module.bias.data if module.bias is not None else None
    return LowRankLinear.from_factors(u, vt, bias=bias, extra_bn=extra_bn)


def factorize_conv2d(module: nn.Conv2d, rank: int, extra_bn: bool = False) -> LowRankConv2d:
    """Replace a trained Conv2d layer by its rank-``r`` factorization."""
    unrolled = weight_to_matrix(module)           # (in·kh·kw, out)
    u, vt = svd_factorize(unrolled, rank)
    return LowRankConv2d.from_factors(module, u, vt, extra_bn=extra_bn)


def factorize_module(module: nn.Module, rank: int, extra_bn: bool = False) -> nn.Module:
    """Factorize a single Linear or Conv2d module (dispatch on type)."""
    if isinstance(module, nn.Conv2d):
        return factorize_conv2d(module, rank, extra_bn=extra_bn)
    if isinstance(module, nn.Linear):
        return factorize_linear(module, rank, extra_bn=extra_bn)
    raise TypeError(f"cannot factorize module of type {type(module).__name__}")


def would_reduce_parameters(module: nn.Module, rank: int) -> bool:
    """True if factorizing ``module`` at ``rank`` has fewer parameters than the original.

    The paper skips factorizations that do not shrink the layer (e.g. a square
    (d, d) projection at ρ = 1/2, see §C.2).
    """
    if isinstance(module, nn.Conv2d):
        out_c, in_c, kh, kw = module.weight.shape
        full = out_c * in_c * kh * kw
        factored = rank * in_c * kh * kw + rank * out_c
        return factored < full
    if isinstance(module, nn.Linear):
        out_f, in_f = module.weight.shape
        return rank * (in_f + out_f) < in_f * out_f
    return False


def factorize_model(
    model: nn.Module,
    ranks: Dict[str, int],
    extra_bn: bool = False,
    skip_non_reducing: bool = True,
) -> List[str]:
    """Factorize every layer listed in ``ranks`` (module path → rank), in place.

    Returns the list of module paths actually factorized.  Layers whose rank
    would not reduce the parameter count are skipped when
    ``skip_non_reducing`` is set (paper §C.2 behaviour).
    """
    factorized: List[str] = []
    for path, rank in ranks.items():
        module = model.get_submodule(path)
        if is_low_rank(module):
            continue
        rank = int(max(1, round(rank)))
        rank = min(rank, full_rank_of(module))
        if skip_non_reducing and not would_reduce_parameters(module, rank):
            logger.debug("skipping %s: rank %d does not reduce parameters", path, rank)
            continue
        replacement = factorize_module(module, rank, extra_bn=extra_bn)
        model.set_submodule(path, replacement)
        factorized.append(path)
    return factorized


def materialize_low_rank(
    model: nn.Module,
    ranks: Dict[str, int],
    extra_bn: bool = False,
) -> List[str]:
    """Install low-rank layers structurally, *without* SVD-ing current weights.

    Swaps each listed Linear/Conv2d for a freshly initialised factorized layer
    of the requested rank.  This is the cheap path used when the factor
    weights are about to be overwritten anyway — e.g. when a serving artifact
    rebuilds the factorized architecture before loading the stored U/Vᵀ
    factors.  Contrast :func:`factorize_model`, which preserves the layer's
    current function via a truncated SVD.
    """
    installed: List[str] = []
    for path, rank in ranks.items():
        module = model.get_submodule(path)
        if is_low_rank(module):
            if int(module.rank) != int(rank):
                raise ValueError(
                    f"layer {path!r} is already factorized at rank {module.rank}, "
                    f"cannot re-materialize at rank {rank}"
                )
            continue
        rank = int(max(1, round(rank)))
        if isinstance(module, nn.Conv2d):
            replacement: nn.Module = LowRankConv2d(
                module.in_channels, module.out_channels, module.kernel_size, rank,
                stride=module.stride, padding=module.padding,
                bias=module.bias is not None, extra_bn=extra_bn,
            )
        elif isinstance(module, nn.Linear):
            replacement = LowRankLinear(
                module.in_features, module.out_features, rank,
                bias=module.bias is not None, extra_bn=extra_bn,
            )
        else:
            raise TypeError(f"cannot materialize low-rank layer at {path!r}: "
                            f"unsupported module type {type(module).__name__}")
        model.set_submodule(path, replacement)
        installed.append(path)
    return installed


def hybrid_parameter_count(model: nn.Module) -> Dict[str, int]:
    """Parameter counts split into full-rank vs factorized layers (hybrid accounting)."""
    full_rank_params = 0
    low_rank_params = 0
    for module in model.modules():
        if is_low_rank(module):
            low_rank_params += sum(p.size for p in module._parameters.values() if p is not None)
    total = model.num_parameters()
    full_rank_params = total - low_rank_params
    return {"total": total, "full_rank": full_rank_params, "low_rank": low_rank_params}
