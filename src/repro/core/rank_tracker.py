"""Per-layer stable-rank tracking and the Ê stopping rule (Section 3.4).

The tracker records, once per epoch, the stable rank of every candidate
layer.  The full-rank → low-rank switch happens at the first epoch where the
(normalised) derivative of every layer's rank trajectory falls below the
stabilisation threshold ε — i.e. all trajectories have flattened out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from repro import nn
from repro.core.stable_rank import (
    full_rank_of,
    initial_scale_factor,
    module_rank_estimate,
    singular_values,
    stable_rank,
    weight_to_matrix,
)


@dataclass
class LayerRankHistory:
    """Rank trajectory ϱ of a single layer."""

    path: str
    full_rank: int
    xi: float = 1.0
    stable_ranks: List[float] = field(default_factory=list)

    @property
    def rank_ratios(self) -> List[float]:
        """Stable rank / full rank per epoch (the ρ values plotted in Figures 2/3)."""
        return [r / self.full_rank for r in self.stable_ranks]

    def derivative(self, window: int = 2) -> float:
        """Mean absolute per-epoch change of the stable-rank trajectory over a window.

        The paper's stopping rule compares this against ε = 0.1 in *rank units*
        (dϱ/dt ≤ ε), i.e. the stable rank of every layer must be changing by
        less than a tenth of a rank per epoch.
        """
        ranks = self.stable_ranks
        if len(ranks) < 2:
            return float("inf")
        window = min(window, len(ranks) - 1)
        diffs = np.abs(np.diff(ranks[-(window + 1):]))
        return float(diffs.mean())


class RankTracker:
    """Tracks stable ranks of the candidate layers over training epochs."""

    def __init__(
        self,
        model: nn.Module,
        candidate_paths: List[str],
        epsilon: float = 0.1,
        derivative_window: int = 2,
        min_epochs: int = 2,
        rank_mode: str = "scaled_stable",
        accumulative_p: float = 0.8,
    ):
        self.candidate_paths = list(candidate_paths)
        self.epsilon = float(epsilon)
        self.derivative_window = int(derivative_window)
        self.min_epochs = int(min_epochs)
        self.rank_mode = rank_mode
        self.accumulative_p = accumulative_p

        self.histories: Dict[str, LayerRankHistory] = {}
        for path in self.candidate_paths:
            module = model.get_submodule(path)
            matrix = weight_to_matrix(module)
            sigma0 = singular_values(matrix)
            fr = full_rank_of(matrix)
            self.histories[path] = LayerRankHistory(
                path=path,
                full_rank=fr,
                xi=initial_scale_factor(sigma0, fr),
            )

    # ------------------------------------------------------------------ #
    # Per-epoch update
    # ------------------------------------------------------------------ #
    def update(self, model: nn.Module) -> Dict[str, float]:
        """Record the current stable rank of every candidate layer.

        Returns the mapping path → stable rank recorded this epoch.  The
        stopping rule's derivative test operates on these unscaled stable
        ranks, matching the paper's ε = 0.1 threshold in rank units.
        """
        recorded: Dict[str, float] = {}
        for path, history in self.histories.items():
            module = model.get_submodule(path)
            sigma = singular_values(weight_to_matrix(module))
            value = stable_rank(sigma)
            history.stable_ranks.append(value)
            recorded[path] = value
        return recorded

    @property
    def epochs_recorded(self) -> int:
        if not self.histories:
            return 0
        return len(next(iter(self.histories.values())).stable_ranks)

    # ------------------------------------------------------------------ #
    # Stopping rule and rank selection
    # ------------------------------------------------------------------ #
    def has_converged(self) -> bool:
        """True when every layer's stable-rank derivative is below ε (Algorithm 1)."""
        if self.epochs_recorded < max(self.min_epochs, 2):
            return False
        return all(
            history.derivative(self.derivative_window) <= self.epsilon
            for history in self.histories.values()
        )

    def select_ranks(self, model: nn.Module) -> Dict[str, int]:
        """Rank per layer using the configured estimation mode (Section 3.3)."""
        ranks: Dict[str, int] = {}
        for path, history in self.histories.items():
            module = model.get_submodule(path)
            estimate = module_rank_estimate(
                module, xi=history.xi, mode=self.rank_mode, accumulative_p=self.accumulative_p
            )
            ranks[path] = int(max(1, min(round(estimate), history.full_rank)))
        return ranks

    # ------------------------------------------------------------------ #
    # Reporting helpers (Figures 2, 3, 10-17)
    # ------------------------------------------------------------------ #
    def rank_ratio_table(self) -> Dict[str, List[float]]:
        """path → per-epoch rank ratios, the data behind the paper's heat maps."""
        return {path: history.rank_ratios for path, history in self.histories.items()}

    def rank_ratio_matrix(self) -> np.ndarray:
        """(num_layers, num_epochs) matrix of rank ratios in candidate order."""
        rows = [self.histories[path].rank_ratios for path in self.candidate_paths]
        if not rows:
            return np.zeros((0, 0))
        return np.asarray(rows, dtype=np.float64)
