"""Cuttlefish core: stable-rank estimation, automatic (E, K, R) selection and
factorized low-rank training."""

from repro.core.stable_rank import (
    accumulative_rank,
    full_rank_of,
    initial_scale_factor,
    module_rank_estimate,
    module_stable_rank,
    scaled_stable_rank,
    singular_value_cdf,
    singular_values,
    stable_rank,
    weight_to_matrix,
)
from repro.core.low_rank_layers import (
    LowRankConv2d,
    LowRankLinear,
    is_low_rank,
    merge_factorized,
)
from repro.core.factorize import (
    factorize_conv2d,
    factorize_linear,
    factorize_model,
    factorize_module,
    hybrid_parameter_count,
    materialize_low_rank,
    reconstruction_error,
    svd_factorize,
    would_reduce_parameters,
)
from repro.core.rank_tracker import LayerRankHistory, RankTracker
from repro.core.frobenius_decay import FrobeniusDecay, frobenius_penalty
from repro.core.profiler import ProfilingResult, StackProfile, profile_layer_stacks
from repro.core.cuttlefish import (
    CuttlefishCallback,
    CuttlefishConfig,
    CuttlefishManager,
    CuttlefishMethod,
    CuttlefishReport,
    train_cuttlefish,
)

__all__ = [
    "accumulative_rank",
    "full_rank_of",
    "initial_scale_factor",
    "module_rank_estimate",
    "module_stable_rank",
    "scaled_stable_rank",
    "singular_value_cdf",
    "singular_values",
    "stable_rank",
    "weight_to_matrix",
    "LowRankConv2d",
    "LowRankLinear",
    "is_low_rank",
    "merge_factorized",
    "materialize_low_rank",
    "factorize_conv2d",
    "factorize_linear",
    "factorize_model",
    "factorize_module",
    "hybrid_parameter_count",
    "reconstruction_error",
    "svd_factorize",
    "would_reduce_parameters",
    "LayerRankHistory",
    "RankTracker",
    "FrobeniusDecay",
    "frobenius_penalty",
    "ProfilingResult",
    "StackProfile",
    "profile_layer_stacks",
    "CuttlefishCallback",
    "CuttlefishConfig",
    "CuttlefishManager",
    "CuttlefishMethod",
    "CuttlefishReport",
    "train_cuttlefish",
]
