"""Cuttlefish — automated low-rank training (Algorithm 1 of the paper).

The public surface has three layers:

* :class:`CuttlefishConfig` — every knob of the method, with the paper's
  defaults (ε = 0.1, υ = 1.5, probe ratio ρ̄ = 1/4, scaled stable rank).
* :class:`CuttlefishManager` — a framework-agnostic state machine.  Feed it
  the model once per epoch (``observe_epoch``); it tracks stable ranks,
  decides when to switch, factorizes the model in place and reports what it
  selected (Ê, K̂, R).
* :class:`CuttlefishCallback` — glue that plugs the manager into
  :class:`repro.train.Trainer`: rebuilds optimizer state after the switch,
  optionally decays the learning rate, and installs the Frobenius-decay
  gradient hook.

``train_cuttlefish`` is a one-call convenience wrapper used by the examples
and benchmark harnesses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro import nn
from repro.core.factorize import factorize_model, hybrid_parameter_count
from repro.core.frobenius_decay import FrobeniusDecay
from repro.core.profiler import ProfilingResult, profile_layer_stacks
from repro.core.rank_tracker import RankTracker
from repro.profiling.roofline import DeviceSpec, V100
from repro.train.methods import ExperimentContext, Method, MethodResult, low_rank_ratios, register_method
from repro.train.trainer import Callback, Trainer
from repro.utils import get_logger

logger = get_logger("core.cuttlefish")


@dataclass
class CuttlefishConfig:
    """Hyper-parameters of the Cuttlefish procedure (all have paper defaults)."""

    # Ê selection (Section 3.4)
    epsilon: float = 0.1                  # rank-stabilisation threshold on dϱ/dt
    derivative_window: int = 2            # epochs over which the derivative is averaged
    min_full_rank_epochs: int = 2         # never switch before this many epochs
    max_full_rank_epochs: Optional[int] = None  # force the switch at this epoch if set

    # R selection (Section 3.3)
    rank_mode: str = "scaled_stable"      # stable | scaled_stable | accumulative | scaled_stable_or_accumulative
    accumulative_p: float = 0.8
    rank_ratio_override: Optional[float] = None  # fixed global ratio (used by ablations)

    # K selection (Section 3.5, Algorithm 2)
    profile_mode: str = "roofline"        # roofline | wallclock | none
    profile_rank_ratio: float = 0.25      # ρ̄
    profile_iterations: int = 3           # τ
    speedup_threshold: float = 1.5        # υ
    profile_device: DeviceSpec = V100
    profile_batch_scale: float = 1.0      # roofline only: pretend the batch is this much larger
    contiguous_prefix: bool = True        # CNNs: once a stack is worth it, factorize all deeper stacks

    # Factorized training options (Section 4.1)
    extra_bn: bool = False
    frobenius_decay: Optional[float] = None   # λ, or None to disable
    lr_decay_on_switch: float = 1.0           # multiply base LR by this at the switch (DeiT: 1/3)
    skip_non_reducing: bool = True


@dataclass
class CuttlefishReport:
    """What Cuttlefish selected during a run — the paper's ŝ = (Ê, K̂, R)."""

    switch_epoch: Optional[int] = None            # Ê
    k_hat: Optional[int] = None                   # K̂
    selected_ranks: Dict[str, int] = field(default_factory=dict)   # R
    factorized_paths: List[str] = field(default_factory=list)
    skipped_paths: List[str] = field(default_factory=list)
    profiling: Optional[ProfilingResult] = None
    params_before: int = 0
    params_after: int = 0

    @property
    def compression_ratio(self) -> float:
        if self.params_after == 0:
            return 1.0
        return self.params_before / self.params_after

    def rank_ratio_of(self, full_ranks: Dict[str, int]) -> Dict[str, float]:
        return {p: self.selected_ranks[p] / full_ranks[p] for p in self.selected_ranks if p in full_ranks}


class CuttlefishManager:
    """Framework-agnostic implementation of Algorithm 1's control flow."""

    def __init__(
        self,
        model: nn.Module,
        config: Optional[CuttlefishConfig] = None,
        candidate_paths: Optional[Sequence[str]] = None,
        stack_paths: Optional[Dict[str, List[str]]] = None,
    ):
        self.config = config or CuttlefishConfig()
        if candidate_paths is None:
            if not hasattr(model, "factorization_candidates"):
                raise ValueError("model does not define factorization_candidates(); pass candidate_paths")
            candidate_paths = model.factorization_candidates()
        self.candidate_paths: List[str] = list(candidate_paths)
        if stack_paths is None and hasattr(model, "layer_stack_paths"):
            stack_paths = model.layer_stack_paths()
        self.stack_paths = stack_paths or {}

        self.report = CuttlefishReport(params_before=model.num_parameters())
        self.tracker = RankTracker(
            model,
            self.candidate_paths,
            epsilon=self.config.epsilon,
            derivative_window=self.config.derivative_window,
            min_epochs=self.config.min_full_rank_epochs,
            rank_mode=self.config.rank_mode,
            accumulative_p=self.config.accumulative_p,
        )
        self.switched = False
        self._excluded_by_profiling: List[str] = []

    # ------------------------------------------------------------------ #
    # K̂ — profiling (Algorithm 2)
    # ------------------------------------------------------------------ #
    def run_profiling(self, model: nn.Module, example_batch, loss_fn=None, forward_fn=None) -> Optional[ProfilingResult]:
        """Decide which layer stacks are worth factorizing; prune the candidate set."""
        if self.report.profiling is not None:
            # A decision was already supplied (e.g. from a paper-scale reference model).
            return self.report.profiling
        if self.config.profile_mode == "none" or not self.stack_paths:
            if self.report.k_hat is None:
                self.report.k_hat = 1
            return None
        result = profile_layer_stacks(
            model,
            self.stack_paths,
            example_batch,
            rank_ratio=self.config.profile_rank_ratio,
            speedup_threshold=self.config.speedup_threshold,
            iterations=self.config.profile_iterations,
            mode=self.config.profile_mode,
            device=self.config.profile_device,
            loss_fn=loss_fn,
            forward_fn=forward_fn,
            contiguous_prefix=self.config.contiguous_prefix,
            batch_scale=self.config.profile_batch_scale,
        )
        self.apply_profiling_result(result)
        return result

    def apply_profiling_result(self, result: ProfilingResult) -> None:
        """Adopt an (possibly externally computed) Algorithm-2 decision.

        This is also the hook used when the K decision is made on a
        paper-scale reference model (same architecture, full width) while the
        actual training runs on a reduced-width model: the stack names match,
        so the skipped layer paths carry over directly.
        """
        self._excluded_by_profiling = [p for p in result.skipped_layer_paths if p in self.candidate_paths]
        if self._excluded_by_profiling:
            remaining = [p for p in self.candidate_paths if p not in set(self._excluded_by_profiling)]
            self.candidate_paths = remaining
            self.tracker.histories = {
                path: history for path, history in self.tracker.histories.items() if path in set(remaining)
            }
            self.tracker.candidate_paths = remaining
        self.report.profiling = result
        self.report.k_hat = result.k_hat
        self.report.skipped_paths = list(result.skipped_layer_paths)
        logger.info("profiling: factorize stacks %s, keep full-rank %s (K̂=%d)",
                    result.factorize_stacks, result.skip_stacks, result.k_hat)

    # ------------------------------------------------------------------ #
    # Ê and R — per-epoch observation (Algorithm 1 main loop)
    # ------------------------------------------------------------------ #
    def observe_epoch(self, model: nn.Module, epoch: int) -> bool:
        """Record ranks for this epoch; switch to low-rank training if stabilised.

        Returns True if the switch happened at this call (the model has been
        factorized in place).
        """
        if self.switched or not self.candidate_paths:
            return False
        self.tracker.update(model)
        forced = (
            self.config.max_full_rank_epochs is not None
            and epoch + 1 >= self.config.max_full_rank_epochs
        )
        if epoch + 1 < self.config.min_full_rank_epochs:
            return False
        if not forced and not self.tracker.has_converged():
            return False
        self._switch(model, epoch)
        return True

    def _select_ranks(self, model: nn.Module) -> Dict[str, int]:
        if self.config.rank_ratio_override is not None:
            ranks = {}
            for path, history in self.tracker.histories.items():
                ranks[path] = max(1, int(round(history.full_rank * self.config.rank_ratio_override)))
            return ranks
        return self.tracker.select_ranks(model)

    def _switch(self, model: nn.Module, epoch: int) -> None:
        ranks = self._select_ranks(model)
        factorized = factorize_model(
            model, ranks, extra_bn=self.config.extra_bn,
            skip_non_reducing=self.config.skip_non_reducing,
        )
        self.switched = True
        self.report.switch_epoch = epoch + 1            # Ê counts full-rank epochs completed
        self.report.selected_ranks = ranks
        self.report.factorized_paths = factorized
        self.report.params_after = model.num_parameters()
        if self.report.k_hat is None:
            self.report.k_hat = 1
        logger.info(
            "Cuttlefish switch at epoch %d: factorized %d layers, params %.3gM → %.3gM (%.2fx)",
            self.report.switch_epoch, len(factorized),
            self.report.params_before / 1e6, self.report.params_after / 1e6,
            self.report.compression_ratio,
        )

    # ------------------------------------------------------------------ #
    def full_ranks(self) -> Dict[str, int]:
        return {path: history.full_rank for path, history in self.tracker.histories.items()}

    # ------------------------------------------------------------------ #
    # Deployment hook
    # ------------------------------------------------------------------ #
    def export_artifact(
        self,
        path: str,
        model: nn.Module,
        model_spec: Optional[Dict] = None,
        input_shape: Optional[Sequence[int]] = None,
        example_batch=None,
        metadata: Optional[Dict] = None,
    ) -> Dict:
        """Export the (possibly factorized) trained model for serving.

        Thin wrapper over :func:`repro.serve.export_artifact` that folds what
        Cuttlefish selected — Ê, K̂, the per-layer ranks and the resulting
        compression — into the artifact metadata, so a serving fleet can
        report which training recipe produced the model it is running.  The
        low-rank factors are exported factorized (the compressed FLOP path);
        use :func:`repro.core.merge_factorized` first for a dense export.
        """
        from repro.serve.artifact import export_artifact  # local: serve imports core

        report = self.report
        combined = {
            "method": "cuttlefish",
            "switch_epoch": report.switch_epoch,
            "k_hat": report.k_hat,
            "selected_ranks": {k: int(v) for k, v in report.selected_ranks.items()},
            "compression_ratio": report.compression_ratio,
            **(metadata or {}),
        }
        return export_artifact(path, model, model_spec=model_spec,
                               input_shape=input_shape, metadata=combined,
                               example_batch=example_batch)


class CuttlefishCallback(Callback):
    """Trainer callback wiring a :class:`CuttlefishManager` into the training loop."""

    def __init__(self, manager: CuttlefishManager, profile_batch=None,
                 loss_fn=None, forward_fn=None):
        self.manager = manager
        self.profile_batch = profile_batch
        self.loss_fn = loss_fn
        self.forward_fn = forward_fn
        self._frobenius: Optional[FrobeniusDecay] = None

    def on_train_begin(self, trainer: Trainer) -> None:
        batch = self.profile_batch
        if batch is None:
            batch = next(iter(trainer.train_loader))
        self.manager.run_profiling(trainer.model, batch, loss_fn=self.loss_fn, forward_fn=self.forward_fn)

    def on_epoch_end(self, trainer: Trainer, epoch: int, logs: Dict[str, float]) -> None:
        switched = self.manager.observe_epoch(trainer.model, epoch)
        if not switched:
            return
        trainer.rebuild_optimizer_params()
        config = self.manager.config
        if config.lr_decay_on_switch != 1.0 and trainer.scheduler is not None:
            trainer.scheduler.scale_base_lr(config.lr_decay_on_switch)
        if config.frobenius_decay is not None:
            self._frobenius = FrobeniusDecay(config.frobenius_decay)
            self._frobenius.configure_optimizer(trainer.optimizer, trainer.model)
            trainer.add_grad_hook(self._frobenius)
        logs["cuttlefish_switch_epoch"] = float(self.manager.report.switch_epoch or -1)


@register_method("cuttlefish")
class CuttlefishMethod(Method):
    """Registered-method adapter: automated (Ê, K̂, R) selection (Algorithm 1)."""

    description = "automated low-rank training: Cuttlefish selects (E, K, R) on the fly"
    uses_label_smoothing = True

    def __init__(self, cuttlefish_config: Optional[CuttlefishConfig] = None):
        self.config = cuttlefish_config
        self.manager: Optional[CuttlefishManager] = None

    def prepare(self, model: nn.Module, context: ExperimentContext) -> nn.Module:
        epochs = context.config.epochs
        config = self.config or CuttlefishConfig(
            min_full_rank_epochs=2,
            max_full_rank_epochs=max(epochs // 2, 2),
            profile_mode="none",
        )
        self.manager = CuttlefishManager(model, config=config)
        # The Algorithm-2 K decision is taken on the paper-scale reference
        # model when the harness provides one (see DESIGN.md).
        if context.reference_profiler is not None:
            reference_result = context.reference_profiler()
            if reference_result is not None:
                self.manager.apply_profiling_result(reference_result)
        return model

    def callbacks(self) -> List[Callback]:
        return [CuttlefishCallback(self.manager)]

    def finalize(self, context: ExperimentContext) -> MethodResult:
        result = super().finalize(context)
        report = self.manager.report
        epochs_full = float(report.switch_epoch or context.config.epochs)
        result.epochs_full = epochs_full
        result.epochs_low = context.config.epochs - epochs_full
        result.rank_ratios = low_rank_ratios(context.model)
        result.extra = {
            "switch_epoch": float(report.switch_epoch or -1),
            "k_hat": float(report.k_hat or -1),
            "compression": report.compression_ratio,
        }
        return result


def train_cuttlefish(
    model: nn.Module,
    optimizer,
    train_loader,
    val_loader=None,
    epochs: int = 10,
    config: Optional[CuttlefishConfig] = None,
    scheduler=None,
    loss_fn=None,
    forward_fn=None,
    candidate_paths: Optional[Sequence[str]] = None,
    stack_paths: Optional[Dict[str, List[str]]] = None,
    label_smoothing: float = 0.0,
    verbose: bool = False,
    max_batches_per_epoch: Optional[int] = None,
):
    """Train ``model`` end-to-end with Cuttlefish; returns (trainer, manager).

    This is the "no tuning" entry point used in the examples: the caller
    provides exactly what full-rank training would need (model, optimizer,
    data, epoch count) and Cuttlefish selects (Ê, K̂, R) on the fly.
    """
    manager = CuttlefishManager(model, config=config, candidate_paths=candidate_paths,
                                stack_paths=stack_paths)
    callback = CuttlefishCallback(manager, loss_fn=loss_fn, forward_fn=forward_fn)
    trainer = Trainer(
        model,
        optimizer,
        train_loader,
        val_loader,
        loss_fn=loss_fn,
        forward_fn=forward_fn,
        scheduler=scheduler,
        callbacks=[callback],
        label_smoothing=label_smoothing,
        max_batches_per_epoch=max_batches_per_epoch,
    )
    trainer.fit(epochs, verbose=verbose)
    return trainer, manager
