"""Frobenius decay for factorized layers (Section 4.1, "Cuttlefish with FD").

Ordinary weight decay on a factorized pair penalises ‖U‖_F² + ‖Vᵀ‖_F², which
is not the same as penalising the effective weight.  Frobenius decay instead
regularises ‖U Vᵀ‖_F², whose gradients are

    ∇_U  (λ/2)‖U Vᵀ‖_F² = λ · U (Vᵀ V)        (computed as (U Vᵀ) V)
    ∇_Vᵀ (λ/2)‖U Vᵀ‖_F² = λ · (Uᵀ U) Vᵀ       (computed as Uᵀ (U Vᵀ))

The shared product U Vᵀ is computed once per layer per step, mirroring the
paper's optimisation.  The decay is applied as a gradient hook after
``backward`` so the autograd graph never sees it — this keeps its cost
negligible, exactly like the fused implementation described in the paper.
When Frobenius decay is active the optimizer's plain L2 decay must be disabled
for the factorized parameters (handled by :meth:`FrobeniusDecay.configure_optimizer`).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

import numpy as np

from repro import nn
from repro.core.low_rank_layers import LowRankConv2d, LowRankLinear, is_low_rank


class FrobeniusDecay:
    """Gradient hook adding λ-weighted Frobenius decay to every factorized layer."""

    def __init__(self, coefficient: float = 1e-4):
        self.coefficient = float(coefficient)

    # ------------------------------------------------------------------ #
    def configure_optimizer(self, optimizer, model: nn.Module) -> None:
        """Exclude factorized parameters from the optimizer's plain L2 decay."""
        if not hasattr(optimizer, "exclude_from_weight_decay"):
            return
        factor_params = []
        for module in model.modules():
            if is_low_rank(module):
                factor_params.extend(module.factor_parameters())
        optimizer.exclude_from_weight_decay(factor_params)

    # ------------------------------------------------------------------ #
    def __call__(self, model: nn.Module) -> None:
        """Add the Frobenius-decay gradient to every factorized layer in ``model``."""
        if self.coefficient == 0.0:
            return
        for module in model.modules():
            if isinstance(module, LowRankLinear):
                self._apply_linear(module)
            elif isinstance(module, LowRankConv2d):
                self._apply_conv(module)

    # ------------------------------------------------------------------ #
    def _apply_linear(self, module: LowRankLinear) -> None:
        u = module.u.data.astype(np.float64)       # (in, r)
        vt = module.vt.data.astype(np.float64)     # (r, out)
        product = u @ vt                            # shared term U Vᵀ, computed once
        grad_u = self.coefficient * (product @ vt.T)
        grad_vt = self.coefficient * (u.T @ product)
        self._accumulate(module.u, grad_u)
        self._accumulate(module.vt, grad_vt)

    def _apply_conv(self, module: LowRankConv2d) -> None:
        rank = module.rank
        in_c = module.in_channels
        kh, kw = module.kernel_size
        u = module.u_weight.data.transpose(1, 2, 3, 0).reshape(in_c * kh * kw, rank).astype(np.float64)
        vt = module.v_weight.data.reshape(module.out_channels, rank).T.astype(np.float64)
        product = u @ vt
        grad_u = self.coefficient * (product @ vt.T)          # (in·k², r)
        grad_vt = self.coefficient * (u.T @ product)           # (r, out)
        grad_u_weight = grad_u.reshape(in_c, kh, kw, rank).transpose(3, 0, 1, 2)
        grad_v_weight = grad_vt.T.reshape(module.out_channels, rank, 1, 1)
        self._accumulate(module.u_weight, grad_u_weight)
        self._accumulate(module.v_weight, grad_v_weight)

    @staticmethod
    def _accumulate(param, grad: np.ndarray) -> None:
        grad = grad.astype(np.float32)
        if param.grad is None:
            param.grad = grad
        else:
            param.grad = param.grad + grad


def frobenius_penalty(model: nn.Module, coefficient: float) -> float:
    """The scalar value (λ/2)·Σ‖U Vᵀ‖_F² — useful for logging/tests."""
    total = 0.0
    for module in model.modules():
        if is_low_rank(module):
            product = module.composed_weight().astype(np.float64)
            total += float(np.sum(product ** 2))
    return 0.5 * coefficient * total
