"""Tables 8-10: the hyper-parameters ŝ = (Ê, K̂) Cuttlefish finds per task.

Runs Cuttlefish on the ResNet-18 and VGG-19 stand-ins and prints the switch
epoch Ê (as a fraction of total training), the K̂ implied by paper-scale
profiling and the mean selected rank ratio — the quantities Tables 8-10
report.  Shape checks: Ê lands strictly inside the training run (neither 0
nor the last epoch) and K̂ > 1 for the CNNs (the first stack is never worth
factorizing on the paper's hardware).
"""

import numpy as np
import pytest

from common import cifar_config, report, run_once
from repro.train.experiments import ExperimentSpec, reference_profiling, run_experiment

MODELS = ["resnet18", "vgg19"]
EPOCHS = 8


def _found_hparams(model: str):
    config = cifar_config("cifar10_small", model, epochs=EPOCHS)
    row = run_experiment(ExperimentSpec(method="cuttlefish", config=config))
    return row


@pytest.mark.parametrize("model", MODELS)
def test_table8_found_hyperparameters(benchmark, model):
    row = run_once(benchmark, lambda: _found_hparams(model))
    e_hat = row.extra["switch_epoch"]
    k_hat = row.extra["k_hat"]
    report(f"table8_found_hparams_{model}",
           f"model={model}\n"
           f"E_hat = {e_hat:.0f} / {EPOCHS} epochs ({100 * e_hat / EPOCHS:.0f}% of training)\n"
           f"K_hat = {k_hat:.0f}\n"
           f"compression = {row.extra['compression']:.2f}x\n"
           f"params = {row.params}")

    # Ê is strictly inside the run: the paper's point that neither E=0 nor E=T is right.
    assert 0 < e_hat < EPOCHS
    # K̂ > 1 for CNNs: profiling on the paper-scale reference excludes the first stack.
    assert k_hat > 1
    assert row.extra["compression"] >= 1.0
