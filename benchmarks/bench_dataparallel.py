"""Data-parallel training benchmark: samples/sec scaling at world_size 1/2/4.

Trains the ResNet cell (resnet18 at reduced width) over synthetic CIFAR-style
data with the thread-based :class:`repro.distributed.DataParallelTrainer` and
reports epoch throughput (samples over wall time) per world size, plus the
per-replica stall/compute split from the pipeline stats.  The measurement
bodies live in ``repro.bench.workloads`` — the same code the registered
``dataparallel`` suite times under ``repro bench run``.

Two assertions gate the run:

* **parity** (always enforced): a ``world_size=1`` data-parallel epoch
  sequence is bit-identical — losses, accuracies and every trained parameter
  — to the plain single-process pipeline-loader ``Trainer``; and a
  ``world_size=2`` run is bit-stable across two back-to-back executions
  (the fixed-tree all-reduce removes worker arrival order from the math);
* **scaling** (enforced only when the host has enough cores): world_size 4
  must clear 1.5x the world_size 1 samples/sec.  Replica workers overlap in
  BLAS-bound numpy kernels that release the GIL, so the speedup needs real
  cores — on smaller hosts the ratio is recorded in the JSON but not fatal.

Results go to ``benchmarks/output/dataparallel.json`` plus the versioned
``repro.bench`` contract (``dataparallel.bench.json`` + ``history.jsonl``).

Usage::

    python benchmarks/bench_dataparallel.py           # full run
    python benchmarks/bench_dataparallel.py --tiny    # CI smoke
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")
SCALING_TARGET = 1.5
SCALING_WORLD_SIZE = 4


def check_parity(dataset, batch_size: int, width_mult: float, epochs: int) -> dict:
    """world_size=1 bit-parity vs the plain Trainer + ws=2 rerun stability."""
    from repro.bench.workloads import build_dp_training
    from repro.data import PipelineLoader
    from repro.models import build_model
    from repro.optim import SGD
    from repro.train.trainer import Trainer
    from repro.utils import get_rng, seed_everything

    def reference():
        seed_everything(0)
        model = build_model("resnet18", num_classes=4, width_mult=width_mult,
                            small_input=True, rng=get_rng(offset=1))
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        trainer = Trainer(model, optimizer, PipelineLoader(dataset, batch_size, shuffle=True))
        losses = [trainer.train_epoch()["loss"] for _ in range(epochs)]
        return losses, [p.data.copy() for p in model.parameters()]

    def data_parallel(world_size):
        trainer = build_dp_training(dataset, batch_size, width_mult, world_size)
        losses = [trainer.train_epoch()["loss"] for _ in range(epochs)]
        return losses, [p.data.copy() for p in trainer.model.parameters()]

    ref_losses, ref_params = reference()
    dp1_losses, dp1_params = data_parallel(1)
    ws1_bit_identical = (ref_losses == dp1_losses
                         and all(np.array_equal(a, b)
                                 for a, b in zip(ref_params, dp1_params)))

    first_losses, first_params = data_parallel(2)
    second_losses, second_params = data_parallel(2)
    ws2_rerun_stable = (first_losses == second_losses
                        and all(np.array_equal(a, b)
                                for a, b in zip(first_params, second_params)))
    return {"ws1_bit_identical_to_trainer": bool(ws1_bit_identical),
            "ws2_bit_stable_across_reruns": bool(ws2_rerun_stable)}


def main(argv=None) -> int:
    from repro.bench import add_standard_flags, emit_script_result, get_suite
    from repro.bench.workloads import build_dp_dataset, dataparallel_throughput

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_standard_flags(parser, "dataparallel", output_dir=OUTPUT_DIR)
    parser.add_argument("--samples", type=int, default=None,
                        help="dataset size (default 1024, tiny 128)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="measured epochs per world size (default 2, tiny 1)")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--width-mult", type=float, default=0.25)
    parser.add_argument("--image-size", type=int, default=None,
                        help="input resolution (default 16, tiny 8)")
    parser.add_argument("--world-sizes", type=int, nargs="+", default=[1, 2, 4])
    args = parser.parse_args(argv)

    n = args.samples or (128 if args.tiny else 1024)
    epochs = args.epochs or (1 if args.tiny else 2)
    image_size = args.image_size or (8 if args.tiny else 16)
    width_mult = 0.125 if args.tiny else args.width_mult
    cores = os.cpu_count() or 1

    dataset = build_dp_dataset(n, image_size)
    results = {"samples": n, "batch_size": args.batch_size, "epochs": epochs,
               "image_size": image_size, "width_mult": width_mult,
               "cpu_count": cores, "world_sizes": {}}

    print(f"{'world_size':>10} | {'samples/s':>10} | {'wall':>8} | per-replica compute")
    for world_size in args.world_sizes:
        row = dataparallel_throughput(dataset, batch_size=args.batch_size,
                                      width_mult=width_mult,
                                      world_size=world_size, epochs=epochs)
        results["world_sizes"][str(world_size)] = row
        compute = " ".join(f"{s:.2f}s" for s in row["replica_compute_seconds"])
        print(f"{world_size:>10} | {row['samples_per_sec']:>8.0f}/s "
              f"| {row['wall_seconds']:>7.2f}s | {compute}")

    base = results["world_sizes"].get("1", {}).get("samples_per_sec", 0.0)
    results["scaling_vs_ws1"] = {
        ws: row["samples_per_sec"] / base if base > 0 else 0.0
        for ws, row in results["world_sizes"].items()}
    for ws, ratio in results["scaling_vs_ws1"].items():
        print(f"scaling ws={ws}: {ratio:.2f}x")

    results["parity"] = check_parity(dataset, args.batch_size, width_mult,
                                     max(epochs, 2))
    print(f"parity: {results['parity']}")

    target_ratio = results["scaling_vs_ws1"].get(str(SCALING_WORLD_SIZE))
    results["meets_scaling_target"] = bool(
        target_ratio is not None and target_ratio >= SCALING_TARGET)
    # Thread scaling needs real cores to overlap the GIL-releasing kernels,
    # and enough steps per epoch to amortise thread spawn + barriers — on
    # smaller hosts and in --tiny smoke mode (one batch per replica) the
    # ratio is reported but not fatal.
    results["scaling_target_enforced"] = bool(
        target_ratio is not None and cores >= SCALING_WORLD_SIZE and not args.tiny)
    print(f"meets >={SCALING_TARGET}x at ws={SCALING_WORLD_SIZE}: "
          f"{results['meets_scaling_target']} "
          f"(enforced={results['scaling_target_enforced']}, cores={cores})")

    ws1 = results["world_sizes"].get("1", {}).get("samples_per_sec")
    ws2 = results["world_sizes"].get("2", {}).get("samples_per_sec")
    if ws1 and ws2:
        emit_script_result(
            args, "dataparallel", results,
            {
                "ws1_samples_per_sec": (ws1, "samples/s", True),
                "ws2_samples_per_sec": (ws2, "samples/s", True),
                "ws2_scaling": (ws2 / ws1, "x", True),
            },
            specs=get_suite("dataparallel").metrics)
    else:
        # Custom --world-sizes without both 1 and 2 cannot fill the registered
        # suite's declared metrics; keep the legacy summary only.
        import json

        os.makedirs(os.path.dirname(args.json_path), exist_ok=True)
        with open(args.json_path, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"[bench_dataparallel] wrote {args.json_path} "
              f"(ws 1+2 not both measured; contract skipped)")

    if not all(results["parity"].values()):
        raise SystemExit("FAIL: data-parallel determinism contract violated")
    if results["scaling_target_enforced"] and not results["meets_scaling_target"]:
        raise SystemExit(
            f"FAIL: ws={SCALING_WORLD_SIZE} scaling "
            f"{target_ratio:.2f}x < {SCALING_TARGET}x on a {cores}-core host")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
