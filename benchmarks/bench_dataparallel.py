"""Data-parallel training benchmark: thread vs process samples/sec at ws 1/2/4/8.

Trains the ResNet cell (resnet18 at reduced width) over synthetic CIFAR-style
data with :class:`repro.distributed.DataParallelTrainer` in both drive modes —
``thread`` (workers overlap only inside GIL-releasing BLAS kernels) and
``process`` (forked workers with shared-memory gradient exchange, the GIL-free
path) — and reports epoch throughput (samples over wall time) per world size
and mode, plus the per-replica stall/compute split from the pipeline stats.
The measurement bodies live in ``repro.bench.workloads`` — the same code the
registered ``dataparallel`` / ``dataparallel-proc`` suites time under
``repro bench run``.

Assertions gating the run:

* **parity** (always enforced): a ``world_size=1`` epoch sequence in *either*
  mode is bit-identical — losses, accuracies and every trained parameter — to
  the plain single-process pipeline-loader ``Trainer``; ``world_size=2`` runs
  are bit-stable across back-to-back executions; and thread vs process at
  ``world_size=2`` are bit-identical to each other (same per-replica float
  ops, same fixed-tree all-reduce);
* **scaling** (enforced only on hosts with >= 4 cores, full budget): process
  mode at world_size 4 must clear 1.5x its world_size 1 samples/sec — forked
  workers do not share a GIL, so this is the true multi-core claim.  Thread
  mode's ratio is recorded but never fatal (threads remain the documented
  fallback on 1-core boxes; DESIGN.md §11.3/§13).

Results go to ``benchmarks/output/dataparallel.json`` (thread rows, versioned
contract ``dataparallel.bench.json``) and ``dataparallel-proc.json`` (process
rows, contract ``dataparallel-proc.bench.json``), both appending to
``history.jsonl``.

Usage::

    python benchmarks/bench_dataparallel.py                    # both modes
    python benchmarks/bench_dataparallel.py --dp-mode process  # one mode
    python benchmarks/bench_dataparallel.py --tiny             # CI smoke
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")
SCALING_TARGET = 1.5
SCALING_WORLD_SIZE = 4


def check_parity(dataset, batch_size: int, width_mult: float, epochs: int,
                 modes) -> dict:
    """Bit-parity asserts across modes (see module docstring)."""
    from repro.bench.workloads import build_dp_training
    from repro.data import PipelineLoader
    from repro.models import build_model
    from repro.optim import SGD
    from repro.train.trainer import Trainer
    from repro.utils import get_rng, seed_everything

    def reference():
        seed_everything(0)
        model = build_model("resnet18", num_classes=4, width_mult=width_mult,
                            small_input=True, rng=get_rng(offset=1))
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9)
        trainer = Trainer(model, optimizer,
                          PipelineLoader(dataset, batch_size, shuffle=True))
        losses = [trainer.train_epoch()["loss"] for _ in range(epochs)]
        return losses, [p.data.copy() for p in model.parameters()]

    def data_parallel(world_size, mode):
        trainer = build_dp_training(dataset, batch_size, width_mult,
                                    world_size, mode)
        try:
            losses = [trainer.train_epoch()["loss"] for _ in range(epochs)]
        finally:
            trainer.shutdown()
        return losses, [p.data.copy() for p in trainer.model.parameters()]

    def same(a, b):
        return a[0] == b[0] and all(np.array_equal(x, y)
                                    for x, y in zip(a[1], b[1]))

    ref = reference()
    parity = {}
    ws2 = {}
    for mode in modes:
        parity[f"{mode}_ws1_bit_identical_to_trainer"] = bool(
            same(ref, data_parallel(1, mode)))
        first, second = data_parallel(2, mode), data_parallel(2, mode)
        parity[f"{mode}_ws2_bit_stable_across_reruns"] = bool(same(first, second))
        ws2[mode] = first
    if "thread" in ws2 and "process" in ws2:
        parity["ws2_thread_process_bit_identical"] = bool(
            same(ws2["thread"], ws2["process"]))
    return parity


def main(argv=None) -> int:
    from repro.bench import add_standard_flags, emit_script_result, get_suite
    from repro.bench.workloads import build_dp_dataset, dataparallel_throughput

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_standard_flags(parser, "dataparallel", output_dir=OUTPUT_DIR)
    parser.add_argument("--samples", type=int, default=None,
                        help="dataset size (default 1024, tiny 128)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="measured epochs per world size (default 2, tiny 1)")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--width-mult", type=float, default=0.25)
    parser.add_argument("--image-size", type=int, default=None,
                        help="input resolution (default 16, tiny 8)")
    parser.add_argument("--world-sizes", type=int, nargs="+", default=None,
                        help="world sizes to measure (default 1 2 4 8, tiny 1 2)")
    parser.add_argument("--dp-mode", default="both",
                        choices=("thread", "process", "both"),
                        help="which drive mode(s) to measure")
    args = parser.parse_args(argv)

    n = args.samples or (128 if args.tiny else 1024)
    epochs = args.epochs or (1 if args.tiny else 2)
    image_size = args.image_size or (8 if args.tiny else 16)
    width_mult = 0.125 if args.tiny else args.width_mult
    world_sizes = args.world_sizes or ([1, 2] if args.tiny else [1, 2, 4, 8])
    modes = ["thread", "process"] if args.dp_mode == "both" else [args.dp_mode]
    cores = os.cpu_count() or 1

    dataset = build_dp_dataset(n, image_size)
    results = {"samples": n, "batch_size": args.batch_size, "epochs": epochs,
               "image_size": image_size, "width_mult": width_mult,
               "cpu_count": cores, "modes": {}}

    print(f"{'mode':>8} | {'world_size':>10} | {'samples/s':>10} | {'wall':>8} "
          "| per-replica compute")
    for mode in modes:
        rows = {}
        for world_size in world_sizes:
            row = dataparallel_throughput(dataset, batch_size=args.batch_size,
                                          width_mult=width_mult,
                                          world_size=world_size, epochs=epochs,
                                          mode=mode)
            rows[str(world_size)] = row
            compute = " ".join(f"{s:.2f}s" for s in row["replica_compute_seconds"])
            print(f"{mode:>8} | {world_size:>10} | {row['samples_per_sec']:>8.0f}/s "
                  f"| {row['wall_seconds']:>7.2f}s | {compute}")
        base = rows.get("1", {}).get("samples_per_sec", 0.0)
        scaling = {ws: row["samples_per_sec"] / base if base > 0 else 0.0
                   for ws, row in rows.items()}
        results["modes"][mode] = {"world_sizes": rows, "scaling_vs_ws1": scaling}
        for ws, ratio in scaling.items():
            print(f"scaling [{mode}] ws={ws}: {ratio:.2f}x")
    # Legacy alias: downstream tooling reads thread rows at the old location.
    legacy = results["modes"].get("thread") or results["modes"][modes[0]]
    results["world_sizes"] = legacy["world_sizes"]
    results["scaling_vs_ws1"] = legacy["scaling_vs_ws1"]

    results["parity"] = check_parity(dataset, args.batch_size, width_mult,
                                     max(epochs, 2), modes)
    print(f"parity: {results['parity']}")

    # The multi-core claim rides on process mode (no shared GIL); thread
    # mode's ratio is recorded but never fatal.  Enforcement needs real
    # cores and the full budget (tiny runs one batch per replica — all
    # fork/lockstep overhead, no amortisation).
    proc_ratio = (results["modes"].get("process", {})
                  .get("scaling_vs_ws1", {}).get(str(SCALING_WORLD_SIZE)))
    results["meets_scaling_target"] = bool(
        proc_ratio is not None and proc_ratio >= SCALING_TARGET)
    results["scaling_target_enforced"] = bool(
        proc_ratio is not None and cores >= SCALING_WORLD_SIZE and not args.tiny)
    print(f"meets >={SCALING_TARGET}x at ws={SCALING_WORLD_SIZE} (process): "
          f"{results['meets_scaling_target']} "
          f"(enforced={results['scaling_target_enforced']}, cores={cores})")

    emitted = False
    if "thread" in results["modes"]:
        rows = results["modes"]["thread"]["world_sizes"]
        ws1 = rows.get("1", {}).get("samples_per_sec")
        ws2 = rows.get("2", {}).get("samples_per_sec")
        if ws1 and ws2:
            emit_script_result(
                args, "dataparallel", results,
                {
                    "ws1_samples_per_sec": (ws1, "samples/s", True),
                    "ws2_samples_per_sec": (ws2, "samples/s", True),
                    "ws2_scaling": (ws2 / ws1, "x", True),
                },
                specs=get_suite("dataparallel").metrics)
            emitted = True
    if "process" in results["modes"]:
        rows = results["modes"]["process"]["world_sizes"]
        ws1 = rows.get("1", {}).get("samples_per_sec")
        ws2 = rows.get("2", {}).get("samples_per_sec")
        if ws1 and ws2:
            proc_args = argparse.Namespace(**vars(args))
            proc_args.json_path = os.path.join(
                os.path.dirname(args.json_path) or ".", "dataparallel-proc.json")
            proc_args.contract_path = None
            emit_script_result(
                proc_args, "dataparallel-proc", results,
                {
                    "proc_ws1_samples_per_sec": (ws1, "samples/s", True),
                    "proc_ws2_samples_per_sec": (ws2, "samples/s", True),
                    "proc_ws2_scaling": (ws2 / ws1, "x", True),
                },
                specs=get_suite("dataparallel-proc").metrics)
            emitted = True
    if not emitted:
        # Custom --world-sizes without both 1 and 2 cannot fill any registered
        # suite's declared metrics; keep the legacy summary only.
        import json

        os.makedirs(os.path.dirname(args.json_path), exist_ok=True)
        with open(args.json_path, "w") as handle:
            json.dump(results, handle, indent=2)
        print(f"[bench_dataparallel] wrote {args.json_path} "
              f"(ws 1+2 not both measured; contract skipped)")

    if not all(results["parity"].values()):
        raise SystemExit("FAIL: data-parallel determinism contract violated")
    if results["scaling_target_enforced"] and not results["meets_scaling_target"]:
        raise SystemExit(
            f"FAIL: process-mode ws={SCALING_WORLD_SIZE} scaling "
            f"{proc_ratio:.2f}x < {SCALING_TARGET}x on a {cores}-core host")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
