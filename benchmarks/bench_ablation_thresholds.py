"""Design-choice ablations called out in DESIGN.md:

* ε (rank-stabilisation threshold) sweep — how the choice of ε moves Ê.
* υ (profiling speedup threshold) sweep — how the choice of υ moves K̂.

Both are cheap: the ε sweep reuses one training run's rank trajectories, and
the υ sweep re-evaluates the deterministic roofline profile.
"""

import numpy as np
import pytest

from common import report, run_once
from repro.core import RankTracker, profile_layer_stacks
from repro.core.rank_tracker import LayerRankHistory
from repro.data import DataLoader, make_vision_task
from repro.models import resnet18
from repro.optim import SGD
from repro.profiling import V100
from repro.train import Trainer
from repro.utils import seed_everything

EPOCHS = 8
EPSILONS = (0.02, 0.1, 0.5, 2.0)
UPSILONS = (1.1, 1.5, 2.0, 3.0)


def _rank_histories():
    seed_everything(0)
    train_ds, _, spec = make_vision_task("cifar10_small")
    loader = DataLoader(train_ds, batch_size=64, shuffle=True)
    model = resnet18(num_classes=spec.num_classes, width_mult=0.25)
    tracker = RankTracker(model, model.factorization_candidates())
    trainer = Trainer(model, SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4), loader)
    for _ in range(EPOCHS):
        trainer.fit(1)
        tracker.update(model)
    return tracker


def _switch_epoch(tracker: RankTracker, epsilon: float) -> int:
    """First epoch at which all layer derivatives fall below ``epsilon``."""
    num_epochs = tracker.epochs_recorded
    for epoch in range(2, num_epochs + 1):
        converged = True
        for history in tracker.histories.values():
            truncated = LayerRankHistory(history.path, history.full_rank, history.xi,
                                         history.stable_ranks[:epoch])
            if truncated.derivative(window=2) > epsilon:
                converged = False
                break
        if converged:
            return epoch
    return num_epochs


def test_ablation_epsilon_controls_switch_epoch(benchmark):
    tracker = run_once(benchmark, _rank_histories)
    switch_epochs = {eps: _switch_epoch(tracker, eps) for eps in EPSILONS}
    report("ablation_epsilon",
           "\n".join(f"epsilon={eps:<5} -> E_hat={epoch}" for eps, epoch in switch_epochs.items()))
    values = [switch_epochs[eps] for eps in EPSILONS]
    # A stricter (smaller) ε waits at least as long before switching.
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_ablation_upsilon_controls_k_hat(benchmark):
    def sweep():
        seed_everything(0)
        model = resnet18(num_classes=10, width_mult=1.0)
        x = np.random.default_rng(0).standard_normal((2, 3, 32, 32)).astype(np.float32)
        y = np.zeros(2, dtype=np.int64)
        k_hats = {}
        for upsilon in UPSILONS:
            result = profile_layer_stacks(model, model.layer_stack_paths(), (x, y),
                                          mode="roofline", device=V100, batch_scale=512.0,
                                          speedup_threshold=upsilon)
            k_hats[upsilon] = result.k_hat
        return k_hats

    k_hats = run_once(benchmark, sweep)
    report("ablation_upsilon",
           "\n".join(f"upsilon={u:<4} -> K_hat={k}" for u, k in k_hats.items()))
    values = [k_hats[u] for u in UPSILONS]
    # A higher speedup requirement keeps at least as many layers full rank.
    assert all(b >= a for a, b in zip(values, values[1:]))
