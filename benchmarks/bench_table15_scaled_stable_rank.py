"""Tables 15-16: scaled vs vanilla stable rank ablation.

Runs Cuttlefish with the vanilla stable rank and with the scaled stable rank
on the ResNet-18 / CIFAR-10 stand-in and on a small DeiT (the case where the
paper reports the largest gap).  Shape checks: vanilla stable rank produces a
*smaller* model (more aggressive compression) while scaled stable rank keeps
more parameters — the mechanism behind the accuracy gap the paper reports.
"""

import numpy as np
import pytest

from common import report, run_once
from repro.core import CuttlefishConfig, train_cuttlefish
from repro.data import DataLoader, make_vision_task
from repro.models import deit_micro, resnet18
from repro.optim import SGD, AdamW
from repro.utils import seed_everything

EPOCHS = 8


def _run(model_name: str, rank_mode: str):
    seed_everything(0)
    train_ds, val_ds, spec = make_vision_task("cifar10_small")
    train_loader = DataLoader(train_ds, batch_size=64, shuffle=True)
    val_loader = DataLoader(val_ds, batch_size=128)
    if model_name == "resnet18":
        model = resnet18(num_classes=spec.num_classes, width_mult=0.25)
        optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4)
    else:
        model = deit_micro(image_size=spec.image_size, num_classes=spec.num_classes,
                           depth=3, embed_dim=48, num_heads=4)
        optimizer = AdamW(model.parameters(), lr=1e-3, weight_decay=0.05)
    config = CuttlefishConfig(min_full_rank_epochs=3, max_full_rank_epochs=5,
                              profile_mode="none", rank_mode=rank_mode)
    trainer, manager = train_cuttlefish(model, optimizer, train_loader, val_loader,
                                        epochs=EPOCHS, config=config)
    return model.num_parameters(), trainer.final_val_accuracy(), manager.report.compression_ratio


@pytest.mark.parametrize("model_name", ["resnet18"])
def test_table15_scaled_vs_vanilla_stable_rank(benchmark, model_name):
    results = run_once(benchmark, lambda: {
        "vanilla": _run(model_name, "stable"),
        "scaled": _run(model_name, "scaled_stable"),
    })
    lines = [f"{'rank metric':10s} {'params':>10s} {'val acc':>9s} {'compression':>12s}"]
    for name, (params, acc, compression) in results.items():
        lines.append(f"{name:10s} {params:10d} {acc:9.4f} {compression:11.2f}x")
    report(f"table15_stable_rank_{model_name}", "\n".join(lines))

    vanilla, scaled = results["vanilla"], results["scaled"]
    # The paper's mechanism: vanilla stable rank is more aggressive (smaller model),
    # scaled stable rank keeps more capacity.
    assert vanilla[0] <= scaled[0]
    # Both still compress relative to full rank.
    assert vanilla[2] >= 1.0 and scaled[2] >= 1.0
