"""Benchmark-suite configuration."""

import sys
import os

# Make the shared helpers importable as ``common`` when pytest collects from the repo root.
sys.path.insert(0, os.path.dirname(__file__))
