"""Figure 9: singular-value CDFs of transformer encoder weights.

Briefly trains a small DeiT on the synthetic task and prints, for the first
and last encoder blocks, how much singular mass the top-half of the spectrum
holds in the attention (QKV) and MLP (FC1/FC2) weights.  The paper's
observations checked: transformer weights are far from low rank (keeping 80%
of the singular mass requires roughly half the dimensions), and the attention
projections are more redundant than the MLP layers — the reason Cuttlefish
uses ρ = 1/2 and the accumulative-rank fallback for transformers (§C.2).
"""

import numpy as np

from common import report, run_once
from repro.core import accumulative_rank, singular_value_cdf, singular_values, weight_to_matrix
from repro.data import DataLoader, make_vision_task
from repro.models import deit_micro
from repro.optim import AdamW
from repro.train import Trainer
from repro.utils import seed_everything

EPOCHS = 4


def _train_and_measure():
    seed_everything(0)
    train_ds, _, spec = make_vision_task("cifar10_small")
    loader = DataLoader(train_ds, batch_size=64, shuffle=True)
    model = deit_micro(image_size=spec.image_size, num_classes=spec.num_classes,
                       depth=4, embed_dim=64, num_heads=4)
    trainer = Trainer(model, AdamW(model.parameters(), lr=1e-3, weight_decay=0.05), loader)
    trainer.fit(EPOCHS)

    results = {}
    for block_index in (0, len(model.blocks) - 1):
        block = model.blocks[block_index]
        for label, module in (("qkv", block.attn.q_proj), ("fc1", block.fc1), ("fc2", block.fc2)):
            matrix = weight_to_matrix(module)
            cdf = singular_value_cdf(matrix)
            half = cdf[len(cdf) // 2 - 1]
            acc80 = accumulative_rank(singular_values(matrix), p=0.8) / min(matrix.shape)
            results[f"block{block_index}.{label}"] = (half, acc80)
    return results


def test_fig9_singular_value_cdf(benchmark):
    results = run_once(benchmark, _train_and_measure)
    lines = [f"{'weight':16s} {'mass in top half':>18s} {'dims for 80% mass':>19s}"]
    for name, (half, acc80) in results.items():
        lines.append(f"{name:16s} {half:18.3f} {acc80:19.3f}")
    report("fig9_singular_value_cdf", "\n".join(lines))

    # Transformer weights are not strongly low rank: reaching 80% of the mass
    # needs a sizeable fraction of the dimensions for the MLP layers.
    fc_fracs = [acc80 for name, (_, acc80) in results.items() if "fc" in name]
    assert np.mean(fc_fracs) > 0.3
    # Attention projections are at least as redundant as the MLP layers.
    qkv_fracs = [acc80 for name, (_, acc80) in results.items() if "qkv" in name]
    assert np.mean(qkv_fracs) <= np.mean(fc_fracs) + 0.05
