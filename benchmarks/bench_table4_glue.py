"""Table 4: BERT fine-tuning on the GLUE stand-ins vs distilled students and
Cuttlefish-factorized BERT.

For each GLUE task the harness fine-tunes (i) the full BERT backbone, (ii) a
DistilBERT-style student (half depth, distillation loss) and (iii) a
Cuttlefish-factorized BERT (attention projections factorized after one warm-up
epoch, feed-forward layers frozen, per §C.2).  Shape checks: both compressed
models are smaller than the teacher; Cuttlefish's average score tracks the
full model more closely than it trails it catastrophically (the Table 4
conclusion that Cuttlefish BERT ≈ BERT_BASE with ~55% of the parameters).
"""

import numpy as np
import pytest

from common import report, run_once
from repro.baselines import DistillationConfig, train_distilled_student
from repro.core import CuttlefishConfig, train_cuttlefish
from repro.data import DataLoader, make_text_task
from repro.models import BertForSequenceClassification, bert_micro
from repro.optim import AdamW
from repro.tensor import functional as F
from repro.train import Trainer, classification_metric
from repro.utils import seed_everything

TASKS = ["sst2", "rte"]
EPOCHS = 3


def _loaders(task):
    train_ds, val_ds, spec = make_text_task(task, overrides={"n_train": 256, "n_val": 128})
    return (DataLoader(train_ds, batch_size=32, shuffle=True),
            DataLoader(val_ds, batch_size=64), spec)


def _forward(model, batch):
    return model(batch[0], attn_mask=batch[1].astype(bool))


def _loss(model, batch):
    return F.cross_entropy(_forward(model, batch), batch[-1])


def _score(model, loader, metric):
    logits, labels = [], []
    from repro.tensor import no_grad
    model.eval()
    with no_grad():
        for batch in loader:
            logits.append(_forward(model, batch).data)
            labels.append(batch[-1])
    return classification_metric(metric, np.concatenate(logits), np.concatenate(labels))


def _run_task(task: str):
    train_loader, val_loader, spec = _loaders(task)
    results = {}

    # Vanilla BERT fine-tuning.
    seed_everything(0)
    teacher = BertForSequenceClassification(bert_micro(), num_classes=spec.num_classes)
    trainer = Trainer(teacher, AdamW(teacher.parameters(), lr=5e-4, weight_decay=0.0),
                      train_loader, loss_fn=_loss, forward_fn=_forward)
    trainer.fit(EPOCHS)
    results["bert"] = (teacher.num_parameters(), _score(teacher, val_loader, spec.metric))

    # DistilBERT-style student.
    seed_everything(0)
    _, student = train_distilled_student(
        teacher, lambda m: AdamW(m.parameters(), lr=5e-4), train_loader, val_loader,
        epochs=EPOCHS, config=DistillationConfig(depth_fraction=0.5), forward_fn=_forward)
    results["distilbert"] = (student.num_parameters(), _score(student, val_loader, spec.metric))

    # Cuttlefish-factorized BERT: factorize attention projections, freeze FFN (§C.2).
    seed_everything(0)
    model = BertForSequenceClassification(bert_micro(), num_classes=spec.num_classes)
    for path in model.feed_forward_paths():
        for param in model.get_submodule(path).parameters():
            param.requires_grad = False
    config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=1,
                              profile_mode="none", rank_ratio_override=0.5)
    trainer, manager = train_cuttlefish(
        model, AdamW([p for p in model.parameters() if p.requires_grad], lr=5e-4),
        train_loader, epochs=EPOCHS, config=config, loss_fn=_loss, forward_fn=_forward)
    results["cuttlefish"] = (model.num_parameters(), _score(model, val_loader, spec.metric))
    return spec.metric, results


def test_table4_glue(benchmark):
    all_results = run_once(benchmark, lambda: {task: _run_task(task) for task in TASKS})

    lines = [f"{'task':8s} {'metric':10s} " + " ".join(f"{m:>22s}" for m in ("bert", "distilbert", "cuttlefish"))]
    averages = {m: [] for m in ("bert", "distilbert", "cuttlefish")}
    for task, (metric, results) in all_results.items():
        row = f"{task:8s} {metric:10s} "
        for method in ("bert", "distilbert", "cuttlefish"):
            params, score = results[method]
            averages[method].append(score)
            row += f" {params:>12d}/{score:>8.4f}"
        lines.append(row)
    lines.append("averages: " + "  ".join(f"{m}={np.mean(v):.4f}" for m, v in averages.items()))
    report("table4_glue", "\n".join(lines))

    # Shape checks: compressed models are smaller; Cuttlefish stays within a
    # reasonable margin of the full fine-tuned model on average (Table 4: 82.0 vs 82.5).
    some_task = next(iter(all_results.values()))[1]
    assert some_task["distilbert"][0] < some_task["bert"][0]
    assert some_task["cuttlefish"][0] < some_task["bert"][0]
    assert np.mean(averages["cuttlefish"]) >= np.mean(averages["bert"]) - 0.2
