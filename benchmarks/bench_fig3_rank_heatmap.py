"""Figure 3: per-layer rank-ratio heat map over epochs (ResNet-18 / CIFAR-10).

Prints the (layer × epoch) matrix of stable-rank ratios as a text heat map and
checks the paper's observation that middle/deeper layers converge to *larger*
redundancy (lower rank ratios) than the early layers.
"""

import numpy as np

from common import report, run_once
from repro.core import RankTracker
from repro.data import DataLoader, make_vision_task
from repro.models import resnet18
from repro.optim import SGD
from repro.train import Trainer
from repro.utils import seed_everything

EPOCHS = 8


def _heatmap():
    seed_everything(0)
    train_ds, _, spec = make_vision_task("cifar10_small")
    loader = DataLoader(train_ds, batch_size=64, shuffle=True)
    model = resnet18(num_classes=spec.num_classes, width_mult=0.25)
    optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4)
    tracker = RankTracker(model, model.factorization_candidates())
    trainer = Trainer(model, optimizer, loader)
    for _ in range(EPOCHS):
        trainer.fit(1)
        tracker.update(model)
    return tracker


def test_fig3_rank_ratio_heatmap(benchmark):
    tracker = run_once(benchmark, _heatmap)
    matrix = tracker.rank_ratio_matrix()

    shades = " .:-=+*#%@"
    lines = ["rank-ratio heat map (rows = layers, columns = epochs; darker = higher ratio)"]
    for i, path in enumerate(tracker.candidate_paths):
        row = "".join(shades[min(int(v * (len(shades) - 1) / 0.8), len(shades) - 1)] for v in matrix[i])
        lines.append(f"{i:2d} {path:28s} |{row}| final={matrix[i, -1]:.3f}")
    report("fig3_rank_heatmap", "\n".join(lines))

    # Paper shape: the final rank ratios differ across layers (a fixed global
    # ratio cannot match them), and deeper layers are at least as redundant.
    final = matrix[:, -1]
    assert final.std() > 0.01
    first_quarter = final[: len(final) // 4].mean()
    last_quarter = final[-len(final) // 4:].mean()
    assert last_quarter <= first_quarter + 0.05
