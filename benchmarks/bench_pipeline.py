"""Input-pipeline throughput benchmark: legacy loader vs streaming pipeline.

Measures loader samples/sec on the ResNet-cell input shape (batch 32, 3x32x32
CIFAR-style images, random-crop + flip + normalise) for:

* ``legacy``      — the per-sample ``DataLoader`` (Python ``__getitem__``
                    loop, per-sample transforms, list collate);
* ``vectorized``  — the synchronous ``PipelineLoader`` (fancy-index gather,
                    batch-level transforms, counter-based per-sample RNG);
* ``prefetch-*``  — ``PrefetchingLoader`` wrappers at several depths and
                    worker counts.

Two measurements per configuration:

* **loader-only** throughput — drain the stream as fast as possible; this is
  what vectorization buys on its own;
* **overlapped** epoch time — a simulated training step (a BLAS-bound GEMM,
  which releases the GIL like every hot kernel in the engine) runs per
  batch; prefetching should hide loader time behind compute, pushing the
  stall fraction toward zero.

The measurement bodies live in ``repro.bench.workloads`` — the same code the
registered ``pipeline`` suite times under ``repro bench run``.  The harness
additionally asserts bit-parity: every prefetched configuration must deliver
batches identical to the synchronous pipeline, and records whether the
vectorized loader clears the 2x samples/sec target over the legacy one.
Results go to ``benchmarks/output/pipeline.json`` plus the versioned
``repro.bench`` contract (``pipeline.bench.json`` + ``history.jsonl``).

Usage::

    python benchmarks/bench_pipeline.py           # full run
    python benchmarks/bench_pipeline.py --tiny    # CI smoke
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")


def check_parity(dataset, batch_size: int) -> bool:
    """Prefetched output must be bit-identical to the synchronous pipeline."""
    from repro.data import PipelineLoader, PrefetchingLoader

    sync = PipelineLoader(dataset, batch_size, shuffle=True)
    sync.set_epoch(1)
    reference = list(sync)
    for depth, workers in ((1, 1), (2, 1), (4, 2)):
        stream = PrefetchingLoader(PipelineLoader(dataset, batch_size, shuffle=True),
                                   depth=depth, workers=workers)
        stream.set_epoch(1)
        for expected, got in zip(reference, stream):
            for field_e, field_g in zip(expected, got):
                if not np.array_equal(field_e, field_g):
                    return False
    return True


def main(argv=None) -> int:
    from repro.bench import add_standard_flags, emit_script_result, get_suite
    from repro.bench.workloads import build_pipeline_dataset, loader_throughput

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_standard_flags(parser, "pipeline", output_dir=OUTPUT_DIR)
    parser.add_argument("--samples", type=int, default=None,
                        help="dataset size (default 2048, tiny 256)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="measured epochs per config (default 3, tiny 1)")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--step-ms", type=float, default=4.0,
                        help="simulated training-step cost for the overlap run")
    args = parser.parse_args(argv)

    n = args.samples or (256 if args.tiny else 2048)
    epochs = args.epochs or (1 if args.tiny else 3)

    measured = loader_throughput(samples=n, batch_size=args.batch_size,
                                 epochs=epochs, step_ms=args.step_ms)
    results = {"samples": n, "batch_size": args.batch_size, "epochs": epochs}
    results.update(measured)

    print(f"{'config':>16} | {'loader-only':>14} | {'overlapped':>14} | stall%")
    for name in measured["loader_only"]:
        loader_only = measured["loader_only"][name]
        overlapped = measured["overlapped"][name]
        print(f"{name:>16} | {loader_only['samples_per_sec']:10.0f} s/s "
              f"| {overlapped['samples_per_sec']:10.0f} s/s "
              f"| {100 * overlapped['stall_fraction']:5.1f}%")

    legacy = results["loader_only"]["legacy"]["samples_per_sec"]
    vectorized = results["loader_only"]["vectorized"]["samples_per_sec"]
    sync_overlap = results["overlapped"]["vectorized"]["samples_per_sec"]
    best_prefetch = max(
        results["overlapped"][name]["samples_per_sec"]
        for name in results["overlapped"] if name.startswith("prefetch"))
    legacy_overlap = results["overlapped"]["legacy"]["samples_per_sec"]
    results["speedups"] = {
        "vectorized_vs_legacy_loader_only": vectorized / max(legacy, 1e-9),
        "prefetch_vs_sync_overlapped": best_prefetch / max(sync_overlap, 1e-9),
        "pipeline_vs_legacy_overlapped": best_prefetch / max(legacy_overlap, 1e-9),
    }
    dataset = build_pipeline_dataset(n)
    results["parity_prefetch_vs_sync"] = check_parity(dataset, args.batch_size)
    results["meets_2x_target"] = bool(
        results["speedups"]["pipeline_vs_legacy_overlapped"] >= 2.0
        or results["speedups"]["vectorized_vs_legacy_loader_only"] >= 2.0)

    for name, value in results["speedups"].items():
        print(f"{name}: {value:.2f}x")
    print(f"parity (prefetch vs sync): {results['parity_prefetch_vs_sync']}")
    print(f"meets >=2x loader target: {results['meets_2x_target']}")
    if not results["parity_prefetch_vs_sync"]:
        raise SystemExit("FAIL: prefetched batches diverged from the synchronous pipeline")

    emit_script_result(
        args, "pipeline", results,
        {
            "legacy_samples_per_sec": (legacy, "samples/s", True),
            "vectorized_samples_per_sec": (vectorized, "samples/s", True),
            "vectorized_speedup": (vectorized / max(legacy, 1e-9), "x", True),
            "prefetch_overlapped_samples_per_sec": (best_prefetch, "samples/s", True),
        },
        specs=get_suite("pipeline").metrics)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
