"""Input-pipeline throughput benchmark: legacy loader vs streaming pipeline.

Measures loader samples/sec on the ResNet-cell input shape (batch 32, 3x32x32
CIFAR-style images, random-crop + flip + normalise) for:

* ``legacy``      — the per-sample ``DataLoader`` (Python ``__getitem__``
                    loop, per-sample transforms, list collate);
* ``vectorized``  — the synchronous ``PipelineLoader`` (fancy-index gather,
                    batch-level transforms, counter-based per-sample RNG);
* ``prefetch-*``  — ``PrefetchingLoader`` wrappers at several depths and
                    worker counts.

Two measurements per configuration:

* **loader-only** throughput — drain the stream as fast as possible; this is
  what vectorization buys on its own;
* **overlapped** epoch time — a simulated training step (a BLAS-bound GEMM,
  which releases the GIL like every hot kernel in the engine) runs per
  batch; prefetching should hide loader time behind compute, pushing the
  stall fraction toward zero.

The harness also asserts bit-parity: every prefetched configuration must
deliver batches identical to the synchronous pipeline, and records whether
the vectorized loader clears the 2x samples/sec target over the legacy one.
Results go to ``benchmarks/output/pipeline.json``.

Usage::

    python benchmarks/bench_pipeline.py           # full run
    python benchmarks/bench_pipeline.py --tiny    # CI smoke
"""

from __future__ import annotations

import argparse
import json
import os
import time

import numpy as np

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")


def build_dataset(n: int, image_size: int = 32):
    from repro.data import ArrayDataset, standard_train_transform
    from repro.utils import get_rng

    rng = get_rng(offset=31)
    images = rng.random((n, 3, image_size, image_size), dtype=np.float64).astype(np.float32)
    labels = rng.integers(0, 10, size=n).astype(np.int64)
    return ArrayDataset(images, labels,
                        transform=standard_train_transform(image_size, crop_padding=2))


def build_loaders(dataset, batch_size: int):
    from repro.data import DataLoader, PipelineLoader, PrefetchingLoader

    def pipeline():
        return PipelineLoader(dataset, batch_size, shuffle=True)

    return {
        "legacy": lambda: DataLoader(dataset, batch_size, shuffle=True),
        "vectorized": pipeline,
        "prefetch-d2": lambda: PrefetchingLoader(pipeline(), depth=2),
        "prefetch-d4-w2": lambda: PrefetchingLoader(pipeline(), depth=4, workers=2),
    }


def drain(loader, epochs: int, compute=None) -> dict:
    """Iterate ``epochs`` epochs; return stall/compute split and samples/sec."""
    from repro.profiling import PipelineStats, instrument

    stats = PipelineStats()
    for epoch in range(epochs):
        set_epoch = getattr(loader, "set_epoch", None)
        if set_epoch is not None:
            set_epoch(epoch)
        for batch in instrument(loader, stats):
            if compute is not None:
                compute(batch)
    return stats.as_dict()


def make_compute(ms_target: float):
    """A GIL-releasing stand-in for one training step (~``ms_target`` ms)."""
    size = 192
    a = np.random.default_rng(0).standard_normal((size, size)).astype(np.float32)
    # Calibrate repetitions so the simulated step costs ~ms_target.
    reps, elapsed = 1, 0.0
    while True:
        start = time.perf_counter()
        for _ in range(reps):
            a @ a
        elapsed = time.perf_counter() - start
        if elapsed * 1e3 >= ms_target / 4 or reps >= 1 << 14:
            break
        reps *= 4
    reps = max(1, int(reps * ms_target / max(elapsed * 1e3, 1e-6)))

    def compute(batch):
        for _ in range(reps):
            a @ a

    return compute


def check_parity(dataset, batch_size: int) -> bool:
    """Prefetched output must be bit-identical to the synchronous pipeline."""
    from repro.data import PipelineLoader, PrefetchingLoader

    sync = PipelineLoader(dataset, batch_size, shuffle=True)
    sync.set_epoch(1)
    reference = list(sync)
    for depth, workers in ((1, 1), (2, 1), (4, 2)):
        stream = PrefetchingLoader(PipelineLoader(dataset, batch_size, shuffle=True),
                                   depth=depth, workers=workers)
        stream.set_epoch(1)
        for expected, got in zip(reference, stream):
            for field_e, field_g in zip(expected, got):
                if not np.array_equal(field_e, field_g):
                    return False
    return True


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--tiny", action="store_true", help="CI smoke mode")
    parser.add_argument("--samples", type=int, default=None,
                        help="dataset size (default 2048, tiny 256)")
    parser.add_argument("--epochs", type=int, default=None,
                        help="measured epochs per config (default 3, tiny 1)")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--step-ms", type=float, default=4.0,
                        help="simulated training-step cost for the overlap run")
    parser.add_argument("--json-path", default=os.path.join(OUTPUT_DIR, "pipeline.json"))
    args = parser.parse_args(argv)

    from repro.utils import seed_everything

    seed_everything(0)
    n = args.samples or (256 if args.tiny else 2048)
    epochs = args.epochs or (1 if args.tiny else 3)
    dataset = build_dataset(n)
    factories = build_loaders(dataset, args.batch_size)

    results = {"samples": n, "batch_size": args.batch_size, "epochs": epochs,
               "loader_only": {}, "overlapped": {}}

    print(f"{'config':>16} | {'loader-only':>14} | {'overlapped':>14} | stall%")
    compute = make_compute(args.step_ms)
    for name, factory in factories.items():
        drain(factory(), 1)  # warm-up epoch (allocator, caches)
        loader_only = drain(factory(), epochs)
        overlapped = drain(factory(), epochs, compute=compute)
        results["loader_only"][name] = loader_only
        results["overlapped"][name] = overlapped
        print(f"{name:>16} | {loader_only['samples_per_sec']:10.0f} s/s "
              f"| {overlapped['samples_per_sec']:10.0f} s/s "
              f"| {100 * overlapped['stall_fraction']:5.1f}%")

    legacy = results["loader_only"]["legacy"]["samples_per_sec"]
    vectorized = results["loader_only"]["vectorized"]["samples_per_sec"]
    sync_overlap = results["overlapped"]["vectorized"]["samples_per_sec"]
    best_prefetch = max(
        results["overlapped"][name]["samples_per_sec"]
        for name in factories if name.startswith("prefetch"))
    legacy_overlap = results["overlapped"]["legacy"]["samples_per_sec"]
    results["speedups"] = {
        "vectorized_vs_legacy_loader_only": vectorized / max(legacy, 1e-9),
        "prefetch_vs_sync_overlapped": best_prefetch / max(sync_overlap, 1e-9),
        "pipeline_vs_legacy_overlapped": best_prefetch / max(legacy_overlap, 1e-9),
    }
    results["parity_prefetch_vs_sync"] = check_parity(dataset, args.batch_size)
    results["meets_2x_target"] = bool(
        results["speedups"]["pipeline_vs_legacy_overlapped"] >= 2.0
        or results["speedups"]["vectorized_vs_legacy_loader_only"] >= 2.0)

    for name, value in results["speedups"].items():
        print(f"{name}: {value:.2f}x")
    print(f"parity (prefetch vs sync): {results['parity_prefetch_vs_sync']}")
    print(f"meets >=2x loader target: {results['meets_2x_target']}")
    if not results["parity_prefetch_vs_sync"]:
        raise SystemExit("FAIL: prefetched batches diverged from the synchronous pipeline")

    os.makedirs(os.path.dirname(args.json_path), exist_ok=True)
    with open(args.json_path, "w") as handle:
        json.dump(results, handle, indent=2)
    print(f"[bench_pipeline] wrote {args.json_path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
