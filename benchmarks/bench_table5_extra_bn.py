"""Table 5: ablation of the extra BatchNorm between the U and Vᵀ factors.

Runs Cuttlefish on the ResNet-18 / CIFAR-10 stand-in with and without the
extra BN and prints model size, accuracy and the projected per-iteration
time.  Shape checks from the paper's ablation: the extra BN adds a (small)
number of parameters and per-iteration time, and the accuracy difference
between the two variants is small at CIFAR scale.
"""

import numpy as np

from common import report, run_once
from repro.core import CuttlefishConfig, train_cuttlefish
from repro.data import DataLoader, make_vision_task
from repro.models import resnet18
from repro.optim import SGD
from repro.profiling import V100, predict_iteration_time
from repro.utils import seed_everything

EPOCHS = 8


def _run(extra_bn: bool):
    seed_everything(0)
    train_ds, val_ds, spec = make_vision_task("cifar10_small")
    train_loader = DataLoader(train_ds, batch_size=64, shuffle=True)
    val_loader = DataLoader(val_ds, batch_size=128)
    model = resnet18(num_classes=spec.num_classes, width_mult=0.25)
    optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4)
    # The only difference between the two variants is the extra BN — Frobenius
    # decay is disabled for both so the ablation isolates the BN effect, as in
    # the paper's Table 5 (FD-vs-no-FD is ablated separately in Table 13).
    config = CuttlefishConfig(min_full_rank_epochs=3, max_full_rank_epochs=5,
                              profile_mode="none", extra_bn=extra_bn,
                              frobenius_decay=None)
    trainer, manager = train_cuttlefish(model, optimizer, train_loader, val_loader,
                                        epochs=EPOCHS, config=config)
    probe = np.random.default_rng(0).standard_normal((4, 3, spec.image_size, spec.image_size)).astype(np.float32)
    iteration_time = predict_iteration_time(model, probe, device=V100, batch_scale=256.0)
    return model.num_parameters(), trainer.final_val_accuracy(), iteration_time


def test_table5_extra_bn_ablation(benchmark):
    results = run_once(benchmark, lambda: {"with_bn": _run(True), "without_bn": _run(False)})
    lines = [f"{'variant':12s} {'params':>10s} {'val acc':>9s} {'iter time (ms)':>15s}"]
    for name, (params, acc, t) in results.items():
        lines.append(f"{name:12s} {params:10d} {acc:9.4f} {1e3 * t:15.4f}")
    report("table5_extra_bn", "\n".join(lines))

    with_params, with_acc, with_time = results["with_bn"]
    without_params, without_acc, without_time = results["without_bn"]
    # Extra BNs add parameters and per-iteration time (Table 5's consistent finding)…
    assert with_params >= without_params
    assert with_time >= without_time * 0.99
    # …while the accuracy difference stays small at CIFAR scale.  The bound is
    # wide because the reduced-scale validation set has only 128 samples
    # (binomial noise alone is ±4%); the paper's gaps are within ±0.5%.
    assert abs(with_acc - without_acc) < 0.2
