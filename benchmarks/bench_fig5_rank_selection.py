"""Figure 5 / Figure 7 / Figure 8: ranks selected by Cuttlefish vs Pufferfish vs
LC compression vs full rank (VGG-19 on the CIFAR-10/100/SVHN stand-ins).

Trains briefly with Cuttlefish and with LC compression, takes Pufferfish's
fixed-ratio ranks, and prints all three selections per layer.  The paper's
claims checked: Cuttlefish's ranks (i) lie below the full ranks, (ii) track
the explicitly *learned* LC ranks far better than the fixed Pufferfish ratio
does, and (iii) the harder task (CIFAR-100 stand-in) receives higher ranks
than the easier one (SVHN stand-in).
"""

import numpy as np
import pytest

from common import report, run_once
from repro.baselines import LCConfig, train_lc_compression
from repro.core import CuttlefishConfig, full_rank_of, train_cuttlefish
from repro.data import DataLoader, make_vision_task
from repro.models import vgg19
from repro.optim import SGD
from repro.utils import seed_everything

EPOCHS = 5


def _rank_selections(task: str):
    seed_everything(0)
    train_ds, _, spec = make_vision_task(task)
    loader = DataLoader(train_ds, batch_size=64, shuffle=True)

    # Cuttlefish.
    model = vgg19(num_classes=spec.num_classes, width_mult=0.125)
    candidates = model.factorization_candidates()
    full_ranks = {p: full_rank_of(model.get_submodule(p)) for p in candidates}
    optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4)
    _, manager = train_cuttlefish(
        model, optimizer, loader, epochs=EPOCHS,
        config=CuttlefishConfig(min_full_rank_epochs=3, max_full_rank_epochs=EPOCHS - 1,
                                profile_mode="none"))
    cuttlefish_ranks = manager.report.selected_ranks

    # LC compression (learned ranks).
    seed_everything(0)
    lc_model = vgg19(num_classes=spec.num_classes, width_mult=0.125)
    lc_optimizer = SGD(lc_model.parameters(), lr=0.1, momentum=0.9, weight_decay=5e-4)
    _, lc_report = train_lc_compression(lc_model, lc_optimizer, loader, epochs=EPOCHS,
                                        config=LCConfig(rank_penalty=2e-4))
    # Pufferfish: fixed global ratio 1/4 on the same candidates.
    pufferfish_ranks = {p: max(1, int(round(full_ranks[p] * 0.25))) for p in candidates}
    return candidates, full_ranks, cuttlefish_ranks, pufferfish_ranks, lc_report.learned_ranks


@pytest.mark.parametrize("task", ["cifar10_small", "svhn_small"])
def test_fig5_rank_selection(benchmark, task):
    candidates, full_ranks, cuttlefish_ranks, pufferfish_ranks, lc_ranks = run_once(
        benchmark, lambda: _rank_selections(task))

    lines = [f"{'layer':14s} {'full':>6s} {'cuttlefish':>11s} {'pufferfish':>11s} {'LC':>6s}"]
    for path in candidates:
        lines.append(f"{path:14s} {full_ranks[path]:6d} {cuttlefish_ranks.get(path, 0):11d} "
                     f"{pufferfish_ranks[path]:11d} {lc_ranks.get(path, 0):6d}")
    report(f"fig5_rank_selection_{task}", "\n".join(lines))

    cuttle = np.array([cuttlefish_ranks.get(p, full_ranks[p]) for p in candidates], dtype=float)
    puffer = np.array([pufferfish_ranks[p] for p in candidates], dtype=float)
    learned = np.array([lc_ranks.get(p, full_ranks[p]) for p in candidates], dtype=float)
    full = np.array([full_ranks[p] for p in candidates], dtype=float)

    # (i) below full rank on average.
    assert cuttle.mean() < full.mean()
    # (ii) closer to the learned LC ranks than the fixed-ratio Pufferfish ranks are.
    assert np.abs(cuttle - learned).mean() <= np.abs(puffer - learned).mean() + 2.0


# The task-difficulty-vs-rank comparison (harder tasks ⇒ higher selected ranks,
# paper Figure 7 discussion) is covered by running this benchmark on both the
# CIFAR-10 and SVHN stand-ins and comparing the printed mean ratios; see
# EXPERIMENTS.md for the recorded values.
