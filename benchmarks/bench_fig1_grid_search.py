"""Figure 1: Cuttlefish vs a grid search over (E, K, rank ratio) on the
accuracy-vs-parameters plane (ResNet-18 / CIFAR-10 stand-in).

Runs a small Pufferfish grid (two warm-up lengths × two global rank ratios),
the full-rank baseline and Cuttlefish, then prints the (params, accuracy)
scatter.  The paper's claim checked here: Cuttlefish lands on the favourable
part of the frontier (smaller than full rank, accuracy within the spread of
the grid-searched configurations) without any of the grid's extra runs.
"""

import numpy as np
import pytest

from common import cifar_config, report, run_once
from repro.baselines import PufferfishConfig
from repro.train.experiments import ExperimentSpec, run_experiment

EPOCHS = 10


def _grid_and_cuttlefish():
    config = cifar_config("cifar10_small", "resnet18", epochs=EPOCHS)
    rows = {}
    rows["full_rank"] = run_experiment(ExperimentSpec(method="full_rank", config=config))
    for warmup in (EPOCHS // 3, EPOCHS // 2):
        for ratio in (0.125, 0.25):
            name = f"pufferfish(E={warmup},rho={ratio})"
            rows[name] = run_experiment(ExperimentSpec(
                method="pufferfish", config=config,
                method_kwargs=dict(pufferfish_config=PufferfishConfig(
                    full_rank_epochs=warmup, rank_ratio=ratio))))
    rows["cuttlefish"] = run_experiment(ExperimentSpec(method="cuttlefish", config=config))
    return rows


def test_fig1_grid_search_vs_cuttlefish(benchmark):
    rows = run_once(benchmark, _grid_and_cuttlefish)

    lines = [f"{'configuration':32s} {'params':>10s} {'val acc':>9s}"]
    for name, row in rows.items():
        lines.append(f"{name:32s} {row.params:10d} {row.val_accuracy:9.4f}")
    report("fig1_grid_search", "\n".join(lines))

    full = rows["full_rank"]
    cuttle = rows["cuttlefish"]
    grid = [row for name, row in rows.items() if name.startswith("pufferfish")]
    # Cuttlefish is smaller than full rank …
    assert cuttle.params < full.params
    # … and its accuracy is within the envelope spanned by the manual grid and
    # the full-rank model (i.e. no manual tuning was needed to land there).
    upper = max([full.val_accuracy] + [r.val_accuracy for r in grid])
    lower = min(r.val_accuracy for r in grid)
    assert cuttle.val_accuracy >= lower - 0.05
    assert cuttle.val_accuracy <= upper + 0.1
