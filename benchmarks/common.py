"""Shared helpers for the benchmark harnesses.

Every benchmark regenerates one table or figure of the paper at a reduced
compute budget (synthetic data, narrow models) and prints the corresponding
rows/series.  Absolute numbers differ from the paper — the substrate is a
numpy simulator, not an AWS GPU fleet — but the *shape* of each result (who
wins, by roughly what factor, where crossovers fall) is asserted in
EXPERIMENTS.md and, where cheap, directly in the benchmark body.

Conventions
-----------
* each benchmark runs its workload exactly once via ``run_once`` (pytest-benchmark
  would otherwise repeat multi-minute training runs);
* results are printed and also appended to ``benchmarks/output/<name>.txt`` so
  they survive pytest's output capture.
"""

from __future__ import annotations

import os
import time
from typing import Callable, Iterable, Mapping, Optional

from repro.train.experiments import ExperimentRow, VisionExperimentConfig, format_rows
from repro.utils import seed_everything

OUTPUT_DIR = os.path.join(os.path.dirname(__file__), "output")


def run_once(benchmark, fn: Callable):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


def report(name: str, text: str,
           suite_result: Optional[Mapping] = None) -> None:
    """Print a result block and persist it under benchmarks/output/.

    Results are *appended* to ``benchmarks/output/<name>.txt`` under a
    timestamped banner, so successive runs accumulate into a local trajectory
    instead of silently overwriting each other.

    When the caller ran as a registered ``repro.bench`` suite, pass its
    results-contract document as ``suite_result`` — it is then also written
    to ``benchmarks/output/<name>.bench.json`` (validated) so the text block
    has a machine-readable, comparable twin.
    """
    banner = f"\n===== {name} =====\n{text}\n"
    print(banner)
    os.makedirs(OUTPUT_DIR, exist_ok=True)
    stamp = time.strftime("%Y-%m-%d %H:%M:%S %z")
    with open(os.path.join(OUTPUT_DIR, f"{name}.txt"), "a") as handle:
        handle.write(f"===== {name} @ {stamp} =====\n")
        handle.write(text + "\n\n")
    if suite_result is not None:
        from repro.bench import write_result

        write_result(os.path.join(OUTPUT_DIR, f"{name}.bench.json"),
                     dict(suite_result))


def report_rows(name: str, rows: Iterable[ExperimentRow]) -> None:
    report(name, format_rows(list(rows)))


# ----------------------------------------------------------------------------- #
# Reduced-scale budgets for the comparison tables.
# ----------------------------------------------------------------------------- #
def cifar_config(task: str, model: str, epochs: int = 10) -> VisionExperimentConfig:
    """Budget for Table 1 / Table 19 style comparisons (CIFAR/SVHN on ResNet/VGG).

    The batch size, learning rate and weight decay are scaled for the reduced
    step count of the CPU budget: the paper's ~15k SGD steps shrink to ~100
    here, so per-step weight decay is proportionally stronger to reproduce the
    spectral decay that drives stable-rank convergence (see DESIGN.md §6).
    """
    seed_everything(0)
    return VisionExperimentConfig(
        task=task, model=model, width_mult=0.125, epochs=epochs, batch_size=32,
        peak_lr=0.3, warmup_epochs=2, weight_decay=5e-3,
    )


def imagenet_config(model: str, epochs: int = 6) -> VisionExperimentConfig:
    """Budget for Table 2 / Table 18 style comparisons (ImageNet-like CNNs)."""
    seed_everything(0)
    return VisionExperimentConfig(
        task="imagenet_small", model=model, width_mult=0.0625, epochs=epochs, batch_size=32,
        peak_lr=0.25, warmup_epochs=1, weight_decay=3e-3, label_smoothing=0.1,
        paper_batch_size=256, paper_steps_per_epoch=5005,
    )
