"""Table 1: ResNet-18 and VGG-19 on the CIFAR-10/CIFAR-100 stand-ins.

For each (model, task) cell the harness runs the paper's main comparison —
full-rank, Pufferfish, SI&FD, Cuttlefish (and, for the ResNet-18/CIFAR-10
cell, also IMP and XNOR-Net) — and prints params / accuracy / time rows.

Shape checks (the paper's Table 1 conclusions, not its absolute numbers):
* every low-rank method is several times smaller than the full-rank model;
* Cuttlefish's projected end-to-end time beats full-rank training;
* methods that retrain repeatedly (IMP) or binarise every step (XNOR) are
  projected to be much slower than full-rank training;
* Cuttlefish's accuracy is within a few points of the full-rank model.
"""

import pytest

from common import cifar_config, report_rows, run_once
from repro.train.experiments import ExperimentSpec, run_experiment

# The full Table 1 grid is 2 models × 2 datasets; to keep the default benchmark
# run within a laptop budget we exercise one dataset per model (the remaining
# two cells can be added back by extending this list).
CELLS = [
    ("resnet18", "cifar10_small"),
    ("vgg19", "cifar100_small"),
]
CORE_METHODS = ["full_rank", "pufferfish", "si_fd", "cuttlefish"]
EXTRA_METHODS = ["imp", "xnor"]          # run only on the first cell to bound runtime


def _run_cell(model: str, task: str, methods):
    config = cifar_config(task, model, epochs=10)
    return [run_experiment(ExperimentSpec(method=method, config=config)) for method in methods]


@pytest.mark.parametrize("model,task", CELLS, ids=[f"{m}-{t}" for m, t in CELLS])
def test_table1_cifar(benchmark, model, task):
    methods = CORE_METHODS + (EXTRA_METHODS if (model, task) == CELLS[0] else [])
    rows = run_once(benchmark, lambda: _run_cell(model, task, methods))
    report_rows(f"table1_{model}_{task}", rows)
    by_method = {row.method: row for row in rows}

    full = by_method["full_rank"]
    cuttle = by_method["cuttlefish"]
    # Compression: Cuttlefish and the other factorized methods are smaller than full rank.
    assert cuttle.params < full.params
    assert by_method["pufferfish"].params < full.params
    assert by_method["si_fd"].params < full.params
    # End-to-end time: factorized training is projected faster than full rank.
    assert cuttle.speedup_vs_full_rank >= 1.0
    # Accuracy stays in the same regime as the full-rank model.
    assert cuttle.val_accuracy >= full.val_accuracy - 0.15
    if "imp" in by_method:
        assert by_method["imp"].speedup_vs_full_rank < 1.0
    if "xnor" in by_method:
        assert by_method["xnor"].speedup_vs_full_rank < 1.0
        assert by_method["xnor"].params_fraction == pytest.approx(1 / 32)
