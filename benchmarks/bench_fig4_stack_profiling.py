"""Figure 4: per-stack iteration time and the K̂ decision (Algorithm 2).

Runs the roofline-based stack profiler on a *full-width* ResNet-18 at the
paper's batch size (1024 via batch scaling) and prints the per-stack
full-rank/factorized times and speedups.  Checks the paper's qualitative
result: the first convolution stack does not gain a meaningful speedup (it is
excluded, giving K̂ > 1) while the deeper stacks exceed the υ = 1.5 threshold.
"""

import numpy as np

from common import report, run_once
from repro.core import profile_layer_stacks
from repro.models import resnet18, vgg19
from repro.profiling import V100
from repro.utils import seed_everything

BATCH_SCALE = 512.0      # probe batch of 2 → effective batch 1024 (the paper's setting)


def _profile(model_name: str):
    seed_everything(0)
    model = resnet18(num_classes=10, width_mult=1.0) if model_name == "resnet18" \
        else vgg19(num_classes=10, width_mult=1.0)
    x = np.random.default_rng(0).standard_normal((2, 3, 32, 32)).astype(np.float32)
    y = np.zeros(2, dtype=np.int64)
    return profile_layer_stacks(model, model.layer_stack_paths(), (x, y),
                                mode="roofline", device=V100, batch_scale=BATCH_SCALE)


def test_fig4_resnet18_stack_profiling(benchmark):
    result = run_once(benchmark, lambda: _profile("resnet18"))
    lines = ["ResNet-18 per-stack iteration time (roofline, V100, batch 1024)",
             f"{'stack':10s} {'full (ms)':>12s} {'factorized (ms)':>16s} {'speedup':>9s}"]
    for profile in result.stack_profiles:
        lines.append(f"{profile.stack_name:10s} {1e3 * profile.full_rank_time:12.3f} "
                     f"{1e3 * profile.factorized_time:16.3f} {profile.speedup:8.2f}x")
    lines.append(f"factorize: {result.factorize_stacks}   keep full-rank: {result.skip_stacks}   "
                 f"K̂ = {result.k_hat}")
    report("fig4_stack_profiling_resnet18", "\n".join(lines))

    table = result.speedup_table()
    # Paper shape (1.1×, 1.7×, 1.9×, 2.6×): first stack below the υ=1.5 bar, rest above.
    assert table["layer1"] < 1.5
    assert all(table[f"layer{i}"] > 1.5 for i in (2, 3, 4))
    assert result.k_hat > 1


def test_fig4_vgg19_stack_profiling(benchmark):
    result = run_once(benchmark, lambda: _profile("vgg19"))
    lines = [f"{p.stack_name}: speedup {p.speedup:.2f}x" for p in result.stack_profiles]
    lines.append(f"K̂ = {result.k_hat}")
    report("fig4_stack_profiling_vgg19", "\n".join(lines))
    table = result.speedup_table()
    assert table["stack1"] < 1.5            # the 64-channel stack is not worth factorizing
    assert table["stack5"] > 1.5            # the 512-channel stack is
