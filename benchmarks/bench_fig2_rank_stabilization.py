"""Figure 2 / Figures 10-17: stable-rank trajectories stabilise early in training.

Trains ResNet-18 and VGG-19 on the synthetic CIFAR-10 stand-in while recording
every candidate layer's stable rank per epoch, then prints the trajectories
and checks the paper's qualitative claim: ranks change rapidly in the first
epochs and flatten out well before training ends.
"""

import numpy as np
import pytest

from common import report, run_once
from repro.core import RankTracker
from repro.data import DataLoader, make_vision_task
from repro.models import resnet18, vgg19
from repro.optim import SGD, build_paper_cifar_schedule
from repro.train import Trainer
from repro.utils import seed_everything

EPOCHS = 8


def _track_ranks(model_name: str, task: str):
    seed_everything(0)
    train_ds, val_ds, spec = make_vision_task(task)
    train_loader = DataLoader(train_ds, batch_size=64, shuffle=True)
    model = (resnet18(num_classes=spec.num_classes, width_mult=0.25) if model_name == "resnet18"
             else vgg19(num_classes=spec.num_classes, width_mult=0.125))
    optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4)
    scheduler = build_paper_cifar_schedule(optimizer, EPOCHS, 0.2, start_lr=0.05, warmup_epochs=2)
    tracker = RankTracker(model, model.factorization_candidates(), epsilon=0.1)
    trainer = Trainer(model, optimizer, train_loader, scheduler=scheduler)
    stabilized_at = None
    for epoch in range(EPOCHS):
        trainer.fit(1)
        tracker.update(model)
        if stabilized_at is None and tracker.has_converged():
            stabilized_at = epoch + 1
    return tracker, stabilized_at


@pytest.mark.parametrize("model_name,task", [("resnet18", "cifar10_small")])
def test_fig2_rank_trajectories(benchmark, model_name, task):
    tracker, stabilized_at = run_once(benchmark, lambda: _track_ranks(model_name, task))

    matrix = tracker.rank_ratio_matrix()          # (layers, epochs)
    lines = [f"stable-rank ratio trajectories ({model_name} on {task}), epochs 1..{matrix.shape[1]}"]
    for i, path in enumerate(tracker.candidate_paths):
        series = " ".join(f"{v:.3f}" for v in matrix[i])
        lines.append(f"layer {i:2d} ({path:30s}): {series}")
    lines.append(f"stabilisation epoch (all |dϱ/dt| ≤ ε): {stabilized_at}")
    report(f"fig2_rank_stabilization_{model_name}", "\n".join(lines))

    # Paper shape: trajectories move early and flatten late.
    early_change = np.abs(np.diff(matrix[:, : matrix.shape[1] // 2], axis=1)).mean()
    late_change = np.abs(np.diff(matrix[:, matrix.shape[1] // 2:], axis=1)).mean()
    assert early_change > late_change
    # Ranks end below full rank: the redundancy Cuttlefish exploits exists.
    assert matrix[:, -1].mean() < 0.95
