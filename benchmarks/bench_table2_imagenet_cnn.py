"""Table 2 / Table 18: ResNet-50 and WideResNet-50-2 on the ImageNet stand-in.

Compares full-rank, Pufferfish and Cuttlefish (Table 2) and additionally
GraSP and EB-Train (Table 18) on the reduced-scale ImageNet-like task.
Shape checks: the factorized models are smaller and projected faster; the
pruning-at-init / early-bird baselines do not beat Cuttlefish's
accuracy-vs-size trade-off, mirroring Table 18's conclusion.
"""

import pytest

from common import imagenet_config, report_rows, run_once
from repro.train.experiments import ExperimentSpec, run_experiment

# WideResNet-50-2 follows the identical code path at double width; the default
# benchmark run covers ResNet-50 to stay within a laptop budget.
MODELS = ["resnet50"]


@pytest.mark.parametrize("model", MODELS)
def test_table2_imagenet_cnns(benchmark, model):
    methods = ["full_rank", "pufferfish", "cuttlefish"]
    rows = run_once(benchmark, lambda: [run_experiment(ExperimentSpec(method=m, config=imagenet_config(model, epochs=4)))
                                        for m in methods])
    report_rows(f"table2_{model}", rows)
    by_method = {row.method: row for row in rows}
    assert by_method["cuttlefish"].params < by_method["full_rank"].params
    assert by_method["pufferfish"].params < by_method["full_rank"].params
    assert by_method["cuttlefish"].speedup_vs_full_rank >= 1.0
    assert by_method["cuttlefish"].val_accuracy >= by_method["full_rank"].val_accuracy - 0.15


def test_table18_pruning_baselines(benchmark):
    methods = ["full_rank", "cuttlefish", "grasp", "early_bird"]
    rows = run_once(benchmark, lambda: [run_experiment(ExperimentSpec(method=m, config=imagenet_config("resnet50", epochs=4)))
                                        for m in methods])
    report_rows("table18_grasp_ebtrain", rows)
    by_method = {row.method: row for row in rows}
    cuttle, full = by_method["cuttlefish"], by_method["full_rank"]
    # Table 18's conclusion: Cuttlefish compresses at comparable accuracy, while
    # GraSP / EB-Train trade noticeably more accuracy for their sparsity.
    assert cuttle.params < full.params
    assert cuttle.val_accuracy >= max(by_method["grasp"].val_accuracy,
                                      by_method["early_bird"].val_accuracy) - 0.1
