"""Table 19: ResNet-18 and VGG-19 on the SVHN stand-in.

Same comparison as Table 1 but on the easier SVHN-like task, where the paper
finds the largest compression ratios (ResNet-18 shrinks ~11×).  Shape checks:
all factorized methods compress; Cuttlefish's compression on SVHN is at least
as strong as on the CIFAR-10 stand-in (easier task ⇒ lower converged ranks);
accuracy stays near the full-rank model.
"""

import pytest

from common import cifar_config, report_rows, run_once
from repro.train.experiments import ExperimentSpec, run_experiment

METHODS = ["full_rank", "pufferfish", "si_fd", "cuttlefish"]


@pytest.mark.parametrize("model", ["resnet18"])
def test_table19_svhn(benchmark, model):
    def run_all():
        svhn_rows = [run_experiment(ExperimentSpec(method=m, config=cifar_config("svhn_small", model, epochs=8)))
                     for m in METHODS]
        cifar_cuttle = run_experiment(ExperimentSpec(
            method="cuttlefish", config=cifar_config("cifar10_small", model, epochs=8)))
        return svhn_rows, cifar_cuttle

    rows, cifar_cuttle = run_once(benchmark, run_all)
    report_rows(f"table19_svhn_{model}", rows)
    by_method = {row.method: row for row in rows}
    full, cuttle = by_method["full_rank"], by_method["cuttlefish"]

    assert cuttle.params < full.params
    assert by_method["pufferfish"].params < full.params
    assert cuttle.val_accuracy >= full.val_accuracy - 0.15
    # Easier task ⇒ compression at least as strong as on the CIFAR-10 stand-in.
    assert cuttle.params_fraction <= cifar_cuttle.params_fraction + 0.1
