"""Figure 6: per-layer iteration time, full rank vs factorized at several rank ratios.

Evaluates the roofline model on a full-width ResNet-50 and a DeiT-small-like
transformer at several probe rank ratios (RR ∈ {1/4, 1/8, 1/16}) and prints
the per-layer times, reproducing two observations from the paper's ablation:

* convolution layers in the deeper ResNet-50 stacks gain large speedups while
  the final FC layer does not (kernel-launch overhead dominates);
* in the transformer, factorizing the MLP layers yields larger gains than
  factorizing the attention projections.
"""

import numpy as np
import pytest

from common import report, run_once
from repro.core import factorize_model, full_rank_of
from repro.models import deit_small, resnet50
from repro.profiling import V100, predict_layer_times
from repro.utils import seed_everything

RANK_RATIOS = (0.25, 0.125, 0.063)


def _layer_times(build_model, example_input, candidate_paths, batch_scale):
    """Per-layer times for the full-rank model and each probe rank ratio."""
    times = {"full": predict_layer_times(build_model(), example_input, device=V100,
                                         batch_scale=batch_scale)}
    for ratio in RANK_RATIOS:
        model = build_model()
        ranks = {p: max(1, int(round(full_rank_of(model.get_submodule(p)) * ratio)))
                 for p in candidate_paths(model)}
        factorize_model(model, ranks, skip_non_reducing=False)
        times[f"rr{ratio}"] = predict_layer_times(model, example_input, device=V100,
                                                  batch_scale=batch_scale)
    return times


def test_fig6_resnet50_layerwise_cost(benchmark):
    seed_everything(0)
    example = np.random.default_rng(0).standard_normal((1, 3, 32, 32)).astype(np.float32)

    def build():
        return resnet50(num_classes=100, width_mult=1.0, small_input=True)

    times = run_once(benchmark, lambda: _layer_times(
        build, example, lambda m: m.factorization_candidates() + ["fc"], batch_scale=128.0))

    reference = build()
    conv_paths = [p for p in reference.factorization_candidates() if "conv" in p or "downsample" in p]
    lines = [f"{'layer':42s} " + " ".join(f"{k:>10s}" for k in times)]
    for path in conv_paths[-8:] + ["fc"]:
        lines.append(f"{path:42s} " + " ".join(f"{1e3 * times[k].get(path, 0.0):10.4f}" for k in times))
    speedups = [times["full"][p] / times["rr0.25"][p] for p in conv_paths if p in times["rr0.25"]]
    lines.append(f"mean conv speedup at RR=0.25: {np.mean(speedups):.2f}x")
    report("fig6_layerwise_cost_resnet50", "\n".join(lines))

    # Paper shape: convolutions gain ≈2× on average at RR 1/4; the small FC head does not gain.
    assert np.mean(speedups) > 1.5
    assert times["full"]["fc"] <= times["rr0.25"]["fc"] * 1.5


def test_fig6_deit_layerwise_cost(benchmark):
    # The paper's Figure 6 (bottom) profiles DeiT-Small on ImageNet at batch
    # 128; the roofline is evaluated at DeiT-Small's real embedding width so
    # the GEMM shapes (and therefore the attention-vs-MLP gap) match the paper.
    seed_everything(0)
    example = np.random.default_rng(0).standard_normal((1, 3, 32, 32)).astype(np.float32)

    def build():
        return deit_small(image_size=32, num_classes=100)

    times = run_once(benchmark, lambda: _layer_times(
        build, example, lambda m: m.factorization_candidates(), batch_scale=128.0))

    reference = build()
    attn_paths = [p for p in reference.factorization_candidates() if ".attn." in p]
    mlp_paths = [p for p in reference.factorization_candidates() if p.endswith(("fc1", "fc2"))]
    attn_speedup = np.mean([times["full"][p] / times["rr0.25"][p] for p in attn_paths])
    mlp_speedup = np.mean([times["full"][p] / times["rr0.25"][p] for p in mlp_paths])
    report("fig6_layerwise_cost_deit",
           f"attention speedup at RR=0.25: {attn_speedup:.2f}x\n"
           f"MLP speedup at RR=0.25:       {mlp_speedup:.2f}x")

    # Paper: MLP factorization (1.73×) gains more than attention factorization (1.26×).
    assert mlp_speedup > attn_speedup
    assert mlp_speedup > 1.2
