"""Tables 13-14: Frobenius-decay ablation for Cuttlefish.

Runs Cuttlefish with and without Frobenius decay on the ResNet-18 / CIFAR-10
stand-in.  The paper finds FD sometimes helps and sometimes does not; the
shape check here is therefore modest: both variants train to comparable
accuracy and identical model sizes (FD changes regularisation, not structure).
"""

import numpy as np

from common import report, run_once
from repro.core import CuttlefishConfig, frobenius_penalty, train_cuttlefish
from repro.data import DataLoader, make_vision_task
from repro.models import resnet18
from repro.optim import SGD
from repro.utils import seed_everything

EPOCHS = 8


def _run(frobenius):
    seed_everything(0)
    train_ds, val_ds, spec = make_vision_task("cifar10_small")
    train_loader = DataLoader(train_ds, batch_size=64, shuffle=True)
    val_loader = DataLoader(val_ds, batch_size=128)
    model = resnet18(num_classes=spec.num_classes, width_mult=0.25)
    optimizer = SGD(model.parameters(), lr=0.2, momentum=0.9, weight_decay=5e-4)
    config = CuttlefishConfig(min_full_rank_epochs=3, max_full_rank_epochs=5,
                              profile_mode="none", frobenius_decay=frobenius)
    trainer, manager = train_cuttlefish(model, optimizer, train_loader, val_loader,
                                        epochs=EPOCHS, config=config)
    penalty = frobenius_penalty(model, 1e-4)
    return model.num_parameters(), trainer.final_val_accuracy(), penalty


def test_table13_frobenius_decay_ablation(benchmark):
    results = run_once(benchmark, lambda: {"with_fd": _run(1e-4), "without_fd": _run(None)})
    lines = [f"{'variant':12s} {'params':>10s} {'val acc':>9s} {'Σ‖UVᵀ‖² (λ/2-scaled)':>22s}"]
    for name, (params, acc, penalty) in results.items():
        lines.append(f"{name:12s} {params:10d} {acc:9.4f} {penalty:22.4f}")
    report("table13_fd_ablation", "\n".join(lines))

    with_fd, without_fd = results["with_fd"], results["without_fd"]
    # FD does not change the architecture…
    assert with_fd[0] == without_fd[0]
    # …keeps the factorized weights smaller in Frobenius norm…
    assert with_fd[2] <= without_fd[2] * 1.05
    # …and neither variant collapses (accuracy difference bounded).
    assert abs(with_fd[1] - without_fd[1]) < 0.2
