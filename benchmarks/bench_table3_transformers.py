"""Table 3: DeiT and ResMLP on the ImageNet stand-in.

Compares full-rank, Pufferfish (fixed ρ = 1/4, the over-aggressive choice the
paper criticises for transformers) and Cuttlefish (which uses the
scaled-stable-rank / accumulative-rank rule and therefore picks milder
compression).  Shape checks: both low-rank methods shrink the model;
Cuttlefish keeps more parameters than Pufferfish's ρ = 1/4 and matches or
beats its accuracy — the Table 3 ordering.
"""

import numpy as np
import pytest

from common import report, run_once
from repro.baselines import PufferfishConfig, train_pufferfish
from repro.core import CuttlefishConfig, train_cuttlefish
from repro.data import DataLoader, make_vision_task
from repro.models import deit_micro, resmlp_micro
from repro.optim import AdamW
from repro.train import Trainer
from repro.utils import seed_everything

EPOCHS = 6


def _build(model_name, spec):
    if model_name == "deit":
        return deit_micro(image_size=spec.image_size, num_classes=spec.num_classes,
                          depth=4, embed_dim=64, num_heads=4)
    return resmlp_micro(image_size=spec.image_size, num_classes=spec.num_classes,
                        depth=4, embed_dim=64)


def _run(model_name: str):
    seed_everything(0)
    train_ds, val_ds, spec = make_vision_task("imagenet_small")
    train_loader = DataLoader(train_ds, batch_size=32, shuffle=True)
    val_loader = DataLoader(val_ds, batch_size=128)
    results = {}

    # Full rank.
    model = _build(model_name, spec)
    full_params = model.num_parameters()
    trainer = Trainer(model, AdamW(model.parameters(), lr=1e-3, weight_decay=0.05),
                      train_loader, val_loader)
    trainer.fit(EPOCHS)
    results["full_rank"] = (full_params, trainer.final_val_accuracy())

    # Pufferfish with the fixed global ratio 1/4 the paper uses as its transformer heuristic.
    seed_everything(0)
    model = _build(model_name, spec)
    trainer, report_pf = train_pufferfish(
        model, AdamW(model.parameters(), lr=1e-3, weight_decay=0.05), train_loader, val_loader,
        epochs=EPOCHS, config=PufferfishConfig(full_rank_epochs=EPOCHS // 2, rank_ratio=0.25))
    results["pufferfish"] = (model.num_parameters(), trainer.final_val_accuracy())

    # Cuttlefish with the paper's transformer rule (Appendix C.2): transformer
    # weights are far from low rank, so a global ratio ρ = 1/2 is used for all
    # factorized layers and layers whose factorization would not reduce the
    # parameter count (the square attention projections) are left full rank.
    seed_everything(0)
    model = _build(model_name, spec)
    config = CuttlefishConfig(min_full_rank_epochs=2, max_full_rank_epochs=EPOCHS // 2,
                              profile_mode="none", rank_ratio_override=0.5,
                              lr_decay_on_switch=1.0)
    trainer, manager = train_cuttlefish(
        model, AdamW(model.parameters(), lr=1e-3, weight_decay=0.05), train_loader, val_loader,
        epochs=EPOCHS, config=config)
    results["cuttlefish"] = (model.num_parameters(), trainer.final_val_accuracy())
    return results


@pytest.mark.parametrize("model_name", ["deit", "resmlp"])
def test_table3_transformers(benchmark, model_name):
    results = run_once(benchmark, lambda: _run(model_name))
    lines = [f"{'method':12s} {'params':>10s} {'val acc':>9s}"]
    for method, (params, acc) in results.items():
        lines.append(f"{method:12s} {params:10d} {acc:9.4f}")
    report(f"table3_{model_name}", "\n".join(lines))

    full_params, full_acc = results["full_rank"]
    pf_params, pf_acc = results["pufferfish"]
    cf_params, cf_acc = results["cuttlefish"]
    assert pf_params < full_params and cf_params < full_params
    # Cuttlefish detects that transformer weights are not very low rank, so it
    # compresses less aggressively than ρ=1/4 Pufferfish …
    assert cf_params >= pf_params
    # … and does not lose accuracy relative to it (Table 3's ordering).
    assert cf_acc >= pf_acc - 0.05
