"""Training-step throughput microbenchmark across execution backends.

Measures steps/sec for a ResNet cell (resnet18 at the CPU-budget width) and
a DeiT cell (deit_micro) on the registered tensor backends — ``numpy``,
``numpy-fast`` and the graph-captured ``numpy-compiled`` by default — plus,
when the git history is available, the original *seed engine* (the
pre-backend, closure-based autograd), extracted from the commit that
introduced ``src/repro/tensor/tensor.py`` and benchmarked in a subprocess.

Every measurement runs in its own subprocess so allocator state, imports and
BLAS warm-up cannot leak between engines.  Results are printed as a table
and written as JSON to ``benchmarks/output/throughput.json``, plus the
versioned ``repro.bench`` results contract (``throughput.bench.json`` + a
longitudinal ``history.jsonl`` append) whenever the resnet cell was measured
on both of that suite's declared backends (``numpy`` and ``numpy-fast``; the
compiled backend has its own ``compiled-throughput`` suite).

Usage::

    python benchmarks/bench_throughput.py                 # full run
    python benchmarks/bench_throughput.py --tiny          # CI smoke (2 steps)
    python benchmarks/bench_throughput.py --no-seed-engine
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tarfile
import tempfile

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC_PATH = os.path.join(REPO_ROOT, "src")
try:
    import repro  # noqa: F401  (PYTHONPATH already provides the engine —
    #                            possibly the *seed* tree in worker mode)
except ImportError:
    sys.path.insert(0, SRC_PATH)
OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")

CELLS = {
    "resnet": dict(model="resnet18", width_mult=0.125, batch=32, image=32,
                   classes=10, optimizer="sgd"),
    "deit": dict(model="deit_micro", width_mult=None, batch=8, image=16,
                 classes=8, optimizer="adamw"),
}


# --------------------------------------------------------------------------- #
# Subprocess worker: one (cell, engine) measurement
# --------------------------------------------------------------------------- #
def _run_cell(cell: str, backend: str, steps: int) -> None:
    """Executed in a subprocess; prints a JSON result on stdout.

    The modern engines route through the shared ``repro.bench.workloads``
    measurement (the same code path ``repro bench run --suite throughput``
    times); the historical seed engine runs against an extracted source tree
    that predates both the backend registry and ``repro.bench``, so it keeps
    an inline measurement loop.
    """
    spec = CELLS[cell]
    if backend != "seed":
        from repro.bench.workloads import training_step_rate

        measured = training_step_rate(
            spec["model"], width_mult=spec["width_mult"], batch_size=spec["batch"],
            image_size=spec["image"], num_classes=spec["classes"],
            optimizer_name=spec["optimizer"], backend=backend,
            steps=steps, warmup_steps=2)
        print(json.dumps({
            "cell": cell,
            "backend": backend,
            "steps": steps,
            "steps_per_sec": measured["steps_per_sec"],
            "final_loss": measured["final_loss"],
        }))
        return

    import time

    import numpy as np

    from repro.utils import seed_everything
    from repro.models import build_model
    from repro.tensor import functional as F

    seed_everything(0)
    kwargs = {"num_classes": spec["classes"]}
    if spec["width_mult"] is not None:
        kwargs["width_mult"] = spec["width_mult"]
    model = build_model(spec["model"], **kwargs)

    if spec["optimizer"] == "sgd":
        from repro.optim import SGD
        optimizer = SGD(model.parameters(), lr=0.05, momentum=0.9, weight_decay=5e-3)
    else:
        from repro.optim import AdamW
        optimizer = AdamW(model.parameters(), lr=1e-3, weight_decay=0.01)

    rng = np.random.default_rng(0)
    x = rng.standard_normal((spec["batch"], 3, spec["image"], spec["image"])).astype(np.float32)
    y = rng.integers(0, spec["classes"], size=spec["batch"])

    def step():
        optimizer.zero_grad()
        loss = F.cross_entropy(model(x), y)
        loss.backward()
        optimizer.step()
        return float(loss.data)

    step()
    step()  # warm-up: allocator, BLAS threads, im2col caches
    start = time.perf_counter()
    final_loss = 0.0
    for _ in range(steps):
        final_loss = step()
    elapsed = time.perf_counter() - start
    print(json.dumps({
        "cell": cell,
        "backend": backend,
        "steps": steps,
        "steps_per_sec": steps / elapsed,
        "final_loss": final_loss,
    }))


def _measure(cell: str, backend: str, steps: int, pythonpath: str) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = pythonpath
    result = subprocess.run(
        [sys.executable, os.path.abspath(__file__),
         "--_run-cell", cell, "--_backend", backend, "--steps", str(steps)],
        capture_output=True, text=True, env=env, timeout=1800,
    )
    if result.returncode != 0:
        raise RuntimeError(f"worker failed for {cell}/{backend}:\n{result.stderr[-2000:]}")
    return json.loads(result.stdout.strip().splitlines()[-1])


# --------------------------------------------------------------------------- #
# Seed-engine extraction
# --------------------------------------------------------------------------- #
def _extract_seed_engine(tmpdir: str) -> str:
    """Materialise the seed commit's ``src/`` tree; return its PYTHONPATH."""
    commit = subprocess.run(
        ["git", "-C", REPO_ROOT, "log", "--follow", "--diff-filter=A",
         "--format=%H", "--", "src/repro/tensor/tensor.py"],
        capture_output=True, text=True, check=True,
    ).stdout.split()[-1]
    archive = os.path.join(tmpdir, "seed.tar")
    with open(archive, "wb") as handle:
        subprocess.run(["git", "-C", REPO_ROOT, "archive", commit, "src"],
                       stdout=handle, check=True)
    with tarfile.open(archive) as tar:
        tar.extractall(tmpdir)
    seed_src = os.path.join(tmpdir, "src")
    # On a shallow clone, git treats the grafted boundary commit as adding
    # every file and the "seed" would silently be the current engine.
    if os.path.exists(os.path.join(seed_src, "repro", "tensor", "backend.py")):
        raise RuntimeError("history is truncated (shallow clone?): extracted "
                           "tree already contains the backend engine")
    if not os.path.exists(os.path.join(seed_src, "repro", "tensor", "tensor.py")):
        raise RuntimeError("extracted seed tree is missing the tensor engine")
    return seed_src


# --------------------------------------------------------------------------- #
# Driver
# --------------------------------------------------------------------------- #
def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else list(argv)

    # Subprocess worker mode first: the seed-engine worker executes against an
    # extracted historical tree that predates ``repro.bench``, so this branch
    # must not touch the driver parser (which imports it).
    if "--_run-cell" in argv:
        worker = argparse.ArgumentParser()
        worker.add_argument("--_run-cell", dest="run_cell", required=True)
        worker.add_argument("--_backend", dest="run_backend", required=True)
        worker.add_argument("--steps", type=int, required=True)
        wargs = worker.parse_args(argv)
        _run_cell(wargs.run_cell, wargs.run_backend, wargs.steps)
        return 0

    from repro.bench import add_standard_flags

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_standard_flags(parser, "throughput", output_dir=OUTPUT_DIR)
    parser.add_argument("--steps", type=int, default=None,
                        help="timed steps per measurement (default 12, tiny 2)")
    parser.add_argument("--cells", nargs="+", default=list(CELLS), choices=list(CELLS))
    parser.add_argument("--backends", nargs="+",
                        default=["numpy", "numpy-fast", "numpy-compiled"])
    parser.add_argument("--no-seed-engine", action="store_true",
                        help="skip the historical seed-engine baseline")
    args = parser.parse_args(argv)

    steps = args.steps if args.steps is not None else (2 if args.tiny else 12)

    engines = [(name, SRC_PATH) for name in args.backends]
    tmpdir = None
    if not args.no_seed_engine:
        try:
            tmpdir = tempfile.TemporaryDirectory(prefix="seed-engine-")
            engines.append(("seed", _extract_seed_engine(tmpdir.name)))
        except Exception as error:  # shallow clone, no git, ...
            print(f"[bench_throughput] seed engine unavailable ({error}); skipping baseline")
            tmpdir = None

    results = {cell: {} for cell in args.cells}
    for cell in args.cells:
        for engine, pythonpath in engines:
            measured = _measure(cell, engine, steps, pythonpath)
            results[cell][engine] = measured
            print(f"{cell:>8} | {engine:>10} | {measured['steps_per_sec']:7.3f} steps/s "
                  f"(loss {measured['final_loss']:.4f})")

    summary = {"steps": steps, "cells": results, "speedups": {}}
    for cell, per_engine in results.items():
        fast = per_engine.get("numpy-fast", {}).get("steps_per_sec")
        ref = per_engine.get("numpy", {}).get("steps_per_sec")
        seed = per_engine.get("seed", {}).get("steps_per_sec")
        compiled = per_engine.get("numpy-compiled", {}).get("steps_per_sec")
        cell_speedups = {}
        if fast and ref:
            cell_speedups["numpy_fast_vs_numpy"] = fast / ref
        if compiled and fast:
            cell_speedups["numpy_compiled_vs_numpy_fast"] = compiled / fast
        if compiled and ref:
            cell_speedups["numpy_compiled_vs_numpy"] = compiled / ref
        if fast and seed:
            cell_speedups["numpy_fast_vs_seed_engine"] = fast / seed
        if ref and seed:
            cell_speedups["numpy_vs_seed_engine"] = ref / seed
        summary["speedups"][cell] = cell_speedups
        for name, value in cell_speedups.items():
            print(f"{cell:>8} | {name}: {value:.2f}x")

    # Backends must agree on the loss exactly — they share one float-op
    # sequence by construction.
    for cell, per_engine in results.items():
        losses = {engine: m["final_loss"] for engine, m in per_engine.items()}
        unique = set(losses.values())
        if len(unique) > 1:
            print(f"[bench_throughput] WARNING: {cell} losses diverge across engines: {losses}")
            summary["speedups"][cell]["losses_identical"] = False
        else:
            summary["speedups"][cell]["losses_identical"] = True

    from repro.bench import emit_script_result, get_suite

    resnet = results.get("resnet", {})
    slow = resnet.get("numpy", {}).get("steps_per_sec")
    fast = resnet.get("numpy-fast", {}).get("steps_per_sec")
    if slow and fast:
        emit_script_result(
            args, "throughput", summary,
            {
                "numpy_steps_per_sec": (slow, "steps/s", True),
                "numpy_fast_steps_per_sec": (fast, "steps/s", True),
                "numpy_fast_speedup": (fast / slow, "x", True),
            },
            specs=get_suite("throughput").metrics)
    else:
        # Partial --cells/--backends selections cannot fill the registered
        # suite's declared metrics; keep the legacy summary only.
        os.makedirs(os.path.dirname(args.json_path), exist_ok=True)
        with open(args.json_path, "w") as handle:
            json.dump(summary, handle, indent=2)
        print(f"[bench_throughput] wrote {args.json_path} "
              f"(resnet numpy+numpy-fast not both measured; contract skipped)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
