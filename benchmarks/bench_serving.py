"""Serving benchmark: artifact export + dynamic micro-batching throughput.

The serving analogue of ``bench_throughput.py``.  For the ResNet serving cell
(resnet18 at the CPU-budget width) it:

1. exports three artifacts — the dense model, a Cuttlefish-style factorized
   model (large-spatial stacks at rank ρ≈1/4), and the factorized model
   merged back to dense — and compares artifact sizes and outputs;
2. drives closed-loop single-sample load against the micro-batching engine
   (and optionally the HTTP server) under two policies: the dynamic batching
   policy and a ``max_batch_size=1`` baseline, reporting the throughput
   ratio.

Both policies run the identical predictor (same batch canonicalization, same
backend), so the ratio isolates what request coalescing buys on one host.
Results are printed as a table and written as JSON to
``benchmarks/output/serving.json`` plus the versioned ``repro.bench``
contract (``serving.bench.json`` + ``history.jsonl``), keyed on the dense
artifact's engine-transport numbers — the same cell the registered
``serving`` suite times under ``repro bench run``.

Usage::

    python benchmarks/bench_serving.py             # full run (engine + http)
    python benchmarks/bench_serving.py --tiny      # CI smoke (~5 s, engine only)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")

# The serving ResNet cell: the same architecture/width as bench_throughput's
# training cell.  Factorization covers the large-spatial stacks (layer1-3),
# where the batch-invariance guarantee holds on this BLAS (DESIGN.md §9).
CELL = dict(model="resnet18", width_mult=0.125, num_classes=10, image=32,
            factorize_prefixes=("layer1.", "layer2.", "layer3."), rank_divisor=4)


def _build(factorized: bool):
    from repro.core import factorize_model, full_rank_of
    from repro.models import build_model
    from repro.utils import seed_everything

    seed_everything(0)
    model = build_model(CELL["model"], num_classes=CELL["num_classes"],
                        width_mult=CELL["width_mult"])
    if factorized:
        paths = [p for p in model.factorization_candidates()
                 if p.startswith(CELL["factorize_prefixes"])]
        ranks = {p: max(1, full_rank_of(model.get_submodule(p)) // CELL["rank_divisor"])
                 for p in paths}
        factorize_model(model, ranks, skip_non_reducing=False)
    model.eval()
    return model


def export_cell_artifacts(directory: str) -> dict:
    """Export dense / factorized / merged-dense artifacts; verify round-trips."""
    from repro.core import merge_factorized
    from repro.serve import artifact_size_bytes, export_artifact, load_artifact
    from repro.tensor import no_grad
    from repro.utils import get_rng

    shape = (3, CELL["image"], CELL["image"])
    spec = {"name": CELL["model"],
            "kwargs": {"num_classes": CELL["num_classes"], "width_mult": CELL["width_mult"]}}
    example = get_rng(offset=123).standard_normal((8,) + shape).astype(np.float32)

    report = {}
    outputs = {}
    models = {"dense": _build(factorized=False), "factorized": _build(factorized=True)}
    merged = _build(factorized=True)
    merge_factorized(merged)
    merged.eval()
    models["merged_dense"] = merged

    for label, model in models.items():
        path = os.path.join(directory, f"{label}.npz")
        manifest = export_artifact(path, model, model_spec=spec, input_shape=shape,
                                   example_batch=example,
                                   metadata={"cell": "resnet", "variant": label})
        predictor = load_artifact(path)
        with no_grad():
            direct = model(example).data
        outputs[label] = predictor(example)
        report[label] = {
            "path": path,
            "size_bytes": artifact_size_bytes(path),
            "num_parameters": manifest["num_parameters"],
            "factorized_layers": len(manifest["ranks"]),
            "batch_invariant": manifest.get("batch_invariant"),
            "roundtrip_bit_identical": bool(np.array_equal(outputs[label], direct)),
        }

    dense_size = report["merged_dense"]["size_bytes"]
    fac_size = report["factorized"]["size_bytes"]
    report["comparison"] = {
        "factorized_vs_dense_size_ratio": fac_size / dense_size,
        "factorized_vs_merged_max_abs_diff": float(
            np.abs(outputs["factorized"] - outputs["merged_dense"]).max()),
        "factorized_smaller": fac_size < dense_size,
    }
    return report


def main(argv=None) -> int:
    from repro.bench import add_standard_flags

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_standard_flags(parser, "serving", output_dir=OUTPUT_DIR)
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds per (transport, policy) config (default 4, tiny 1)")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="closed-loop clients (default 32, tiny 8)")
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--transports", nargs="+", default=None,
                        choices=["engine", "http"])
    parser.add_argument("--backend", default="numpy-fast")
    parser.add_argument("--variants", nargs="+", default=["dense", "factorized"],
                        choices=["dense", "factorized", "merged_dense"])
    args = parser.parse_args(argv)

    duration = args.duration if args.duration is not None else (1.0 if args.tiny else 4.0)
    concurrency = args.concurrency if args.concurrency is not None else (8 if args.tiny else 32)
    transports = args.transports or (["engine"] if args.tiny else ["engine", "http"])
    warmup = 0.25 if args.tiny else 0.5

    from repro.serve import bench_artifact

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    artifact_dir = os.path.join(OUTPUT_DIR, "artifacts")
    os.makedirs(artifact_dir, exist_ok=True)

    print("[bench_serving] exporting artifacts ...")
    artifacts = export_cell_artifacts(artifact_dir)
    ratio = artifacts["comparison"]["factorized_vs_dense_size_ratio"]
    print(f"[bench_serving] factorized artifact is {ratio:.2f}x the dense export size "
          f"(max |Δoutput| vs merged dense: "
          f"{artifacts['comparison']['factorized_vs_merged_max_abs_diff']:.2e})")

    summary = {
        "cell": CELL,
        "policy": {"max_batch_size": args.max_batch_size, "max_wait_ms": args.max_wait_ms},
        "backend": args.backend,
        "artifacts": artifacts,
        "load": {},
    }
    for variant in args.variants:
        path = artifacts[variant]["path"]
        print(f"[bench_serving] load-testing {variant} artifact "
              f"({concurrency} clients, {duration:.1f}s per config) ...")
        result = bench_artifact(
            path,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            duration_s=duration,
            concurrency=concurrency,
            transports=transports,
            backend=args.backend,
            warmup_s=warmup,
        )
        summary["load"][variant] = result
        for transport, data in result["transports"].items():
            batched, batch1 = data["batched"], data["batch1"]
            print(f"{variant:>11} | {transport:>6} | batched {batched['throughput_rps']:8.1f} rps "
                  f"(p99 {batched['latency_ms']['p99']:6.1f} ms) | "
                  f"batch-1 {batch1['throughput_rps']:7.1f} rps "
                  f"(p99 {batch1['latency_ms']['p99']:6.1f} ms) | "
                  f"speedup {data['speedup']:5.2f}x")

    from repro.bench import emit_script_result, get_suite

    dense_engine = (summary["load"].get("dense", {})
                    .get("transports", {}).get("engine"))
    if dense_engine is not None:
        emit_script_result(
            args, "serving", summary,
            {
                "batched_rps": (dense_engine["batched"]["throughput_rps"],
                                "req/s", True),
                "batch1_rps": (dense_engine["batch1"]["throughput_rps"],
                               "req/s", True),
                "batching_speedup": (dense_engine["speedup"], "x", True),
                "batched_p99_ms": (dense_engine["batched"]["latency_ms"]["p99"],
                                   "ms", False),
            },
            specs=get_suite("serving").metrics)
    else:
        # Custom --variants/--transports without the dense engine run cannot
        # fill the registered suite's declared metrics; legacy summary only.
        with open(args.json_path, "w") as handle:
            json.dump(summary, handle, indent=2, default=float)
        print(f"[bench_serving] wrote {args.json_path} "
              f"(dense engine transport not measured; contract skipped)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
