"""Serving benchmark: artifact export + dynamic micro-batching throughput.

The serving analogue of ``bench_throughput.py``.  For the ResNet serving cell
(resnet18 at the CPU-budget width) it:

1. exports three artifacts — the dense model, a Cuttlefish-style factorized
   model (large-spatial stacks at rank ρ≈1/4), and the factorized model
   merged back to dense — and compares artifact sizes and outputs;
2. drives closed-loop single-sample load against the micro-batching engine
   (and optionally the HTTP server) under two policies: the dynamic batching
   policy and a ``max_batch_size=1`` baseline, reporting the throughput
   ratio;
3. sweeps the predictor pool across sizes 1/2/4 (same policy, same execution
   mode) for the replication-scaling curve — asserting bit-invariance of
   predictions across pool sizes — and runs a burst-shaped open-loop load
   with the SLO controller live, reporting p99 attainment against target.
   On >= 4-core hosts at full budget, process-mode pool-4 must beat pool-1
   by > 1.5x and the burst p99 must land within 1.5x of the SLO target.

Both policies run the identical predictor (same batch canonicalization, same
backend), so the ratio isolates what request coalescing buys on one host.
Results are printed as a table and written as JSON to
``benchmarks/output/serving.json`` plus the versioned ``repro.bench``
contract (``serving.bench.json`` + ``history.jsonl``), keyed on the dense
artifact's engine-transport numbers — the same cell the registered
``serving`` suite times under ``repro bench run``.

Usage::

    python benchmarks/bench_serving.py             # full run (engine + http)
    python benchmarks/bench_serving.py --tiny      # CI smoke (~5 s, engine only)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

import numpy as np

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
try:
    import repro  # noqa: F401
except ImportError:
    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))

OUTPUT_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "output")

# The serving ResNet cell: the same architecture/width as bench_throughput's
# training cell.  Factorization covers the large-spatial stacks (layer1-3),
# where the batch-invariance guarantee holds on this BLAS (DESIGN.md §9).
CELL = dict(model="resnet18", width_mult=0.125, num_classes=10, image=32,
            factorize_prefixes=("layer1.", "layer2.", "layer3."), rank_divisor=4)


def _build(factorized: bool):
    from repro.core import factorize_model, full_rank_of
    from repro.models import build_model
    from repro.utils import seed_everything

    seed_everything(0)
    model = build_model(CELL["model"], num_classes=CELL["num_classes"],
                        width_mult=CELL["width_mult"])
    if factorized:
        paths = [p for p in model.factorization_candidates()
                 if p.startswith(CELL["factorize_prefixes"])]
        ranks = {p: max(1, full_rank_of(model.get_submodule(p)) // CELL["rank_divisor"])
                 for p in paths}
        factorize_model(model, ranks, skip_non_reducing=False)
    model.eval()
    return model


def export_cell_artifacts(directory: str) -> dict:
    """Export dense / factorized / merged-dense artifacts; verify round-trips."""
    from repro.core import merge_factorized
    from repro.serve import artifact_size_bytes, export_artifact, load_artifact
    from repro.tensor import no_grad
    from repro.utils import get_rng

    shape = (3, CELL["image"], CELL["image"])
    spec = {"name": CELL["model"],
            "kwargs": {"num_classes": CELL["num_classes"], "width_mult": CELL["width_mult"]}}
    example = get_rng(offset=123).standard_normal((8,) + shape).astype(np.float32)

    report = {}
    outputs = {}
    models = {"dense": _build(factorized=False), "factorized": _build(factorized=True)}
    merged = _build(factorized=True)
    merge_factorized(merged)
    merged.eval()
    models["merged_dense"] = merged

    for label, model in models.items():
        path = os.path.join(directory, f"{label}.npz")
        manifest = export_artifact(path, model, model_spec=spec, input_shape=shape,
                                   example_batch=example,
                                   metadata={"cell": "resnet", "variant": label})
        predictor = load_artifact(path)
        with no_grad():
            direct = model(example).data
        outputs[label] = predictor(example)
        report[label] = {
            "path": path,
            "size_bytes": artifact_size_bytes(path),
            "num_parameters": manifest["num_parameters"],
            "factorized_layers": len(manifest["ranks"]),
            "batch_invariant": manifest.get("batch_invariant"),
            "roundtrip_bit_identical": bool(np.array_equal(outputs[label], direct)),
        }

    dense_size = report["merged_dense"]["size_bytes"]
    fac_size = report["factorized"]["size_bytes"]
    report["comparison"] = {
        "factorized_vs_dense_size_ratio": fac_size / dense_size,
        "factorized_vs_merged_max_abs_diff": float(
            np.abs(outputs["factorized"] - outputs["merged_dense"]).max()),
        "factorized_smaller": fac_size < dense_size,
    }
    return report


def run_pool_section(dense_path: str, args, *, duration: float,
                     concurrency: int, warmup: float) -> dict:
    """Pool-scaling curve at sizes 1/2/4 plus a burst-shape SLO run.

    Acceptance gates (full budget only, skipped under ``--tiny``):

    * on a >= 4-core host in process mode, pool-4 throughput must exceed
      1.5x pool-1 under the same policy;
    * under the ``burst`` traffic shape the SLO controller must land p99
      within 1.5x of its target.
    """
    from repro.bench.workloads import serving_pool_throughput
    from repro.serve import (BatchingPolicy, DynamicBatcher, TrafficShape,
                             arrival_times, load_artifact, run_open_loop)
    from repro.utils import get_rng

    pool_sizes = sorted(set(args.pool_sizes))
    print(f"[bench_serving] pool-scaling curve (sizes {pool_sizes}, "
          f"mode {args.pool_mode}) ...")
    curve = serving_pool_throughput(
        pool_sizes=tuple(pool_sizes),
        duration_s=duration,
        concurrency=concurrency,
        backend=args.backend,
        warmup_s=warmup,
        mode=args.pool_mode,
        artifact_path=dense_path,
    )
    mode = curve["mode"]
    top = pool_sizes[-1]
    for size in pool_sizes:
        run = curve["raw"][str(size)]
        print(f"       pool {size} | {mode:>7} | {run['throughput_rps']:8.1f} rps "
              f"(p99 {run['latency_ms']['p99']:6.1f} ms)")
    scaling = curve[f"pool{top}_scaling"]
    print(f"[bench_serving] pool-{top} scaling: {scaling:.2f}x over pool-1 "
          f"(bit-invariance across sizes verified)")
    cores = os.cpu_count() or 1
    if not args.tiny and mode == "process" and cores >= 4 and top >= 4:
        assert scaling > 1.5, (
            f"process-mode pool {top} reached only {scaling:.2f}x pool-1 "
            f"throughput on a {cores}-core host (acceptance floor: 1.5x)")

    # Burst-shape SLO attainment: open-loop load at ~80% of pool-1 capacity
    # mean rate with 4x bursts, SLO controller live-tuning the policy.
    pool1_raw = curve["raw"][str(pool_sizes[0])]
    target_ms = args.slo_p99_ms
    if target_ms is None:
        target_ms = max(20.0, 3.0 * float(pool1_raw["latency_ms"]["p99"]))
    mean_rps = max(10.0, 0.8 * float(pool1_raw["throughput_rps"]))
    shape = TrafficShape(kind="burst", mean_rps=mean_rps,
                         duration_s=max(2.0, 2 * duration), seed=0,
                         period_s=1.0, burst_factor=4.0, burst_duty=0.2)
    print(f"[bench_serving] burst SLO run: target p99 {target_ms:.0f} ms, "
          f"mean {mean_rps:.0f} rps (4x bursts), workers={top}, mode={mode} ...")
    predictor = load_artifact(dense_path, backend=args.backend)
    samples = get_rng(offset=7).standard_normal(
        (max(64, 2 * concurrency),) + predictor.input_shape).astype(np.float32)
    batcher = DynamicBatcher(
        predictor,
        policy=BatchingPolicy(max_batch_size=args.max_batch_size,
                              max_wait_ms=args.max_wait_ms),
        name="slo-burst", workers=top, mode=mode, slo=target_ms)
    try:
        result = run_open_loop(
            lambda s: batcher.submit(s, timeout=None).result(timeout=60.0),
            samples, arrival_times(shape),
            max_inflight=max(16, 2 * concurrency), transport="engine")
        slo_stats = batcher.stats().get("slo", {})
    finally:
        batcher.close(drain=True)
    achieved = float(result.latency_ms["p99"])
    adjustments = int(slo_stats.get("adjustments_total", 0))
    print(f"[bench_serving] burst p99 {achieved:.1f} ms vs target {target_ms:.0f} ms "
          f"({adjustments} controller adjustments, "
          f"{result.requests} reqs @ {result.throughput_rps:.1f} rps)")
    if not args.tiny and cores >= 4:
        # On fewer cores the 4x burst peak exceeds host capacity outright —
        # no controller can hold p99 when offered load > service capacity.
        assert achieved <= 1.5 * target_ms, (
            f"SLO controller missed: burst p99 {achieved:.1f} ms vs "
            f"target {target_ms:.0f} ms (allowed 1.5x)")

    return {
        "curve": curve,
        "slo": {
            "target_p99_ms": target_ms,
            "achieved_p99_ms": achieved,
            "adjustments_total": adjustments,
            "shape": {"kind": "burst", "mean_rps": mean_rps,
                      "burst_factor": 4.0, "burst_duty": 0.2},
            "open_loop": result.as_dict(),
        },
    }


def main(argv=None) -> int:
    from repro.bench import add_standard_flags

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_standard_flags(parser, "serving", output_dir=OUTPUT_DIR)
    parser.add_argument("--duration", type=float, default=None,
                        help="seconds per (transport, policy) config (default 4, tiny 1)")
    parser.add_argument("--concurrency", type=int, default=None,
                        help="closed-loop clients (default 32, tiny 8)")
    parser.add_argument("--max-batch-size", type=int, default=32)
    parser.add_argument("--max-wait-ms", type=float, default=2.0)
    parser.add_argument("--transports", nargs="+", default=None,
                        choices=["engine", "http"])
    parser.add_argument("--backend", default="numpy-fast")
    parser.add_argument("--variants", nargs="+", default=["dense", "factorized"],
                        choices=["dense", "factorized", "merged_dense"])
    parser.add_argument("--pool-sizes", type=int, nargs="+", default=[1, 2, 4],
                        help="predictor-pool sizes for the scaling curve")
    parser.add_argument("--pool-mode", default="auto",
                        choices=["thread", "process", "auto"],
                        help="pool execution mode ('auto': process when fork works)")
    parser.add_argument("--skip-pool", action="store_true",
                        help="skip the pool-scaling curve and the burst SLO run")
    parser.add_argument("--slo-p99-ms", type=float, default=None,
                        help="p99 target for the burst-shape SLO-attainment run "
                             "(default: 3x the pool-1 p99 from the scaling curve)")
    args = parser.parse_args(argv)

    duration = args.duration if args.duration is not None else (1.0 if args.tiny else 4.0)
    concurrency = args.concurrency if args.concurrency is not None else (8 if args.tiny else 32)
    transports = args.transports or (["engine"] if args.tiny else ["engine", "http"])
    warmup = 0.25 if args.tiny else 0.5

    from repro.serve import bench_artifact

    os.makedirs(OUTPUT_DIR, exist_ok=True)
    artifact_dir = os.path.join(OUTPUT_DIR, "artifacts")
    os.makedirs(artifact_dir, exist_ok=True)

    print("[bench_serving] exporting artifacts ...")
    artifacts = export_cell_artifacts(artifact_dir)
    ratio = artifacts["comparison"]["factorized_vs_dense_size_ratio"]
    print(f"[bench_serving] factorized artifact is {ratio:.2f}x the dense export size "
          f"(max |Δoutput| vs merged dense: "
          f"{artifacts['comparison']['factorized_vs_merged_max_abs_diff']:.2e})")

    summary = {
        "cell": CELL,
        "policy": {"max_batch_size": args.max_batch_size, "max_wait_ms": args.max_wait_ms},
        "backend": args.backend,
        "artifacts": artifacts,
        "load": {},
    }
    for variant in args.variants:
        path = artifacts[variant]["path"]
        print(f"[bench_serving] load-testing {variant} artifact "
              f"({concurrency} clients, {duration:.1f}s per config) ...")
        result = bench_artifact(
            path,
            max_batch_size=args.max_batch_size,
            max_wait_ms=args.max_wait_ms,
            duration_s=duration,
            concurrency=concurrency,
            transports=transports,
            backend=args.backend,
            warmup_s=warmup,
        )
        summary["load"][variant] = result
        for transport, data in result["transports"].items():
            batched, batch1 = data["batched"], data["batch1"]
            print(f"{variant:>11} | {transport:>6} | batched {batched['throughput_rps']:8.1f} rps "
                  f"(p99 {batched['latency_ms']['p99']:6.1f} ms) | "
                  f"batch-1 {batch1['throughput_rps']:7.1f} rps "
                  f"(p99 {batch1['latency_ms']['p99']:6.1f} ms) | "
                  f"speedup {data['speedup']:5.2f}x")

    if not args.skip_pool:
        summary["pool"] = run_pool_section(
            artifacts["dense"]["path"], args, duration=duration,
            concurrency=concurrency, warmup=warmup)

    from repro.bench import emit_script_result, get_suite

    dense_engine = (summary["load"].get("dense", {})
                    .get("transports", {}).get("engine"))
    if dense_engine is not None:
        emit_script_result(
            args, "serving", summary,
            {
                "batched_rps": (dense_engine["batched"]["throughput_rps"],
                                "req/s", True),
                "batch1_rps": (dense_engine["batch1"]["throughput_rps"],
                               "req/s", True),
                "batching_speedup": (dense_engine["speedup"], "x", True),
                "batched_p99_ms": (dense_engine["batched"]["latency_ms"]["p99"],
                                   "ms", False),
            },
            specs=get_suite("serving").metrics)
    else:
        # Custom --variants/--transports without the dense engine run cannot
        # fill the registered suite's declared metrics; legacy summary only.
        with open(args.json_path, "w") as handle:
            json.dump(summary, handle, indent=2, default=float)
        print(f"[bench_serving] wrote {args.json_path} "
              f"(dense engine transport not measured; contract skipped)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
