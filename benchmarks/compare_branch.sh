#!/usr/bin/env bash
# Branch-vs-branch perf compare (ROADMAP item 4's driver, modeled on
# delta-rs-benchmarking's compare_branch.sh).
#
# Runs the requested repro.bench suites twice — once in a detached git
# worktree at --base-ref, once in the current working tree — and prints the
# noise-aware verdict table per suite via `repro bench compare`.  Exits
# nonzero if any suite regressed past the noise threshold (or errored).
#
# Usage:
#   benchmarks/compare_branch.sh [--base-ref REF] [--suites "a b c"]
#                                [--full] [--warmup N] [--repeat N]
#                                [--noise-threshold FRAC] [--keep-worktree]
#
# Defaults: base-ref HEAD~1, tiny budget, warmup 1, repeat 3, threshold 0.1,
# suites "throughput pipeline dataparallel dataparallel-proc serving".
set -euo pipefail

BASE_REF="HEAD~1"
SUITES="throughput pipeline dataparallel dataparallel-proc serving"
TINY="--tiny"
WARMUP=1
REPEAT=3
NOISE=0.1
KEEP_WORKTREE=0

while [[ $# -gt 0 ]]; do
    case "$1" in
        --base-ref) BASE_REF="$2"; shift 2 ;;
        --suites) SUITES="$2"; shift 2 ;;
        --full) TINY=""; shift ;;
        --warmup) WARMUP="$2"; shift 2 ;;
        --repeat) REPEAT="$2"; shift 2 ;;
        --noise-threshold) NOISE="$2"; shift 2 ;;
        --keep-worktree) KEEP_WORKTREE=1; shift ;;
        -h|--help) sed -n '2,16p' "$0"; exit 0 ;;
        *) echo "unknown flag: $1" >&2; exit 2 ;;
    esac
done

REPO_ROOT="$(git rev-parse --show-toplevel)"
BASE_SHA="$(git -C "$REPO_ROOT" rev-parse --short "$BASE_REF")"
WORKDIR="$(mktemp -d "${TMPDIR:-/tmp}/compare-branch.XXXXXX")"
BASE_TREE="$WORKDIR/base"
OUT="$WORKDIR/results"
mkdir -p "$OUT"

cleanup() {
    if [[ "$KEEP_WORKTREE" -eq 0 ]]; then
        git -C "$REPO_ROOT" worktree remove --force "$BASE_TREE" 2>/dev/null || true
        rm -rf "$WORKDIR"
    else
        echo "kept worktree: $BASE_TREE (results in $OUT)"
    fi
}
trap cleanup EXIT

echo "== compare_branch: base=$BASE_REF ($BASE_SHA) vs working tree =="
git -C "$REPO_ROOT" worktree add --detach "$BASE_TREE" "$BASE_REF" >/dev/null

run_suite() {
    # run_suite <tree> <suite> <out.json>; nonzero if the ref can't run it.
    local tree="$1" suite="$2" out="$3"
    (cd "$tree" && PYTHONPATH=src python -m repro.cli bench run \
        --suite "$suite" $TINY --warmup "$WARMUP" --repeat "$REPEAT" \
        --json-path "$out" --no-history >/dev/null)
}

FAILED=0
SKIPPED=()
for suite in $SUITES; do
    echo
    echo "== suite: $suite =="
    if ! run_suite "$BASE_TREE" "$suite" "$OUT/base-$suite.json"; then
        echo "suite '$suite' does not run at $BASE_REF (predates it?); skipping"
        SKIPPED+=("$suite")
        continue
    fi
    run_suite "$REPO_ROOT" "$suite" "$OUT/cand-$suite.json"
    if ! (cd "$REPO_ROOT" && PYTHONPATH=src python -m repro.cli bench compare \
            "$OUT/base-$suite.json" "$OUT/cand-$suite.json" \
            --noise-threshold "$NOISE"); then
        FAILED=1
    fi
done

echo
if [[ ${#SKIPPED[@]} -gt 0 ]]; then
    echo "skipped (not runnable at base): ${SKIPPED[*]}"
fi
if [[ "$FAILED" -ne 0 ]]; then
    echo "RESULT: regression past the ${NOISE} noise threshold"
    exit 1
fi
echo "RESULT: no regressions past the ${NOISE} noise threshold"
