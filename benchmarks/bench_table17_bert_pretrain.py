"""Table 17: BERT masked-language-model pre-training, vanilla vs Cuttlefish.

Pre-trains a small BERT on the synthetic MLM corpus with and without the
Cuttlefish switch (attention + feed-forward layers factorized after the
warm-up).  Shape checks matching Table 17: the Cuttlefish model has markedly
fewer parameters (the paper: 249M vs 345M) while its final MLM loss stays
within a small margin of the vanilla model's (1.60 vs 1.58).
"""

import numpy as np

from common import report, run_once
from repro.core import CuttlefishConfig, train_cuttlefish
from repro.data import DataLoader, make_mlm_corpus
from repro.models import BertForMaskedLM, bert_micro
from repro.optim import AdamW
from repro.tensor import functional as F, no_grad
from repro.train import Trainer, mlm_loss
from repro.utils import seed_everything

EPOCHS = 4


def _mlm_loss_fn(spec):
    def loss_fn(model, batch):
        inputs, labels = batch
        logits = model(inputs)
        return F.cross_entropy(logits.reshape((-1, spec.vocab_size)), labels.reshape(-1),
                               ignore_index=-100)
    return loss_fn


def _evaluate(model, val_ds):
    loader = DataLoader(val_ds, batch_size=64)
    losses = []
    model.eval()
    with no_grad():
        for inputs, labels in loader:
            losses.append(mlm_loss(model(inputs).data, labels))
    return float(np.mean(losses))


def _run(use_cuttlefish: bool):
    seed_everything(0)
    train_ds, val_ds, spec = make_mlm_corpus()
    train_loader = DataLoader(train_ds, batch_size=32, shuffle=True)
    model = BertForMaskedLM(bert_micro(vocab_size=spec.vocab_size, max_seq_len=spec.seq_len))
    optimizer = AdamW(model.parameters(), lr=1e-3, weight_decay=0.01)
    loss_fn = _mlm_loss_fn(spec)
    if use_cuttlefish:
        config = CuttlefishConfig(min_full_rank_epochs=1, max_full_rank_epochs=2,
                                  profile_mode="none", rank_ratio_override=0.5)
        trainer, _ = train_cuttlefish(model, optimizer, train_loader, epochs=EPOCHS,
                                      config=config, loss_fn=loss_fn,
                                      forward_fn=lambda m, b: m(b[0]))
    else:
        trainer = Trainer(model, optimizer, train_loader, loss_fn=loss_fn)
        trainer.fit(EPOCHS)
    return model.num_parameters(), _evaluate(model, val_ds)


def test_table17_bert_pretraining(benchmark):
    results = run_once(benchmark, lambda: {"vanilla": _run(False), "cuttlefish": _run(True)})
    lines = [f"{'model':12s} {'params':>10s} {'MLM loss':>10s}"]
    for name, (params, loss) in results.items():
        lines.append(f"{name:12s} {params:10d} {loss:10.4f}")
    report("table17_bert_pretrain", "\n".join(lines))

    vanilla, cuttle = results["vanilla"], results["cuttlefish"]
    # Table 17's shape: fewer parameters, MLM loss within a small margin.
    assert cuttle[0] < vanilla[0]
    assert cuttle[1] <= vanilla[1] * 1.25
