"""Setup shim so that ``pip install -e .`` works in fully offline environments
(where the ``wheel`` package needed for PEP 660 editable wheels is absent)."""

from setuptools import find_packages, setup

setup(
    name="repro-cuttlefish",
    version="0.1.0",
    description="Cuttlefish (MLSys 2023) reproduction: automated low-rank training",
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.9",
    install_requires=["numpy", "scipy"],
    entry_points={"console_scripts": [
        "repro-cuttlefish=repro.cli:main",
        "repro=repro.cli:main",
    ]},
)
