"""Setup shim so that ``pip install -e .`` works in fully offline environments
(where the ``wheel`` package needed for PEP 660 editable wheels is absent)."""

from setuptools import setup

setup()
